#include "blink/blink/multiserver.h"

#include <algorithm>
#include <exception>
#include <limits>
#include <stdexcept>
#include <string>

#include "blink/blink/plan_io.h"
#include "blink/common/thread_pool.h"
#include "blink/sim/executor.h"
#include "blink/sim/trace.h"

namespace blink {

namespace {

template <typename T>
T& at(std::vector<T>& v, int i) {
  return v[static_cast<std::size_t>(i)];
}
template <typename T>
const T& at(const std::vector<T>& v, int i) {
  return v[static_cast<std::size_t>(i)];
}

bool is_power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }

// Whether two packings of one (server, root) pair came out identical —
// root, fabric choice, and every tree's structure and bandwidth assignment.
// Used by the health-event path to keep a cached set (pointer identity and
// all) when a rebuild on the post-event planning topology reproduced it.
bool tree_sets_equal(const TreeSet& a, const TreeSet& b) {
  if (a.root != b.root || a.link != b.link ||
      a.bidirectional != b.bidirectional || a.rate != b.rate ||
      a.graph.num_edges() != b.graph.num_edges() ||
      a.trees.size() != b.trees.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.trees.size(); ++i) {
    const packing::WeightedTree& ta = a.trees[i];
    const packing::WeightedTree& tb = b.trees[i];
    if (ta.weight != tb.weight || ta.tree.root != tb.tree.root ||
        ta.tree.edge_ids != tb.tree.edge_ids) {
      return false;
    }
  }
  return true;
}

std::vector<topo::Topology> validated_cluster(
    std::vector<topo::Topology> servers) {
  if (servers.size() < 2) {
    throw std::invalid_argument("cluster needs at least two servers");
  }
  return servers;
}

}  // namespace

const char* to_string(Phase2Policy policy) {
  switch (policy) {
    case Phase2Policy::kAuto:
      return "auto";
    case Phase2Policy::kAllToAll:
      return "all-to-all";
    case Phase2Policy::kRing:
      return "ring";
    case Phase2Policy::kHierarchical:
      return "hierarchical";
  }
  return "?";
}

const char* to_string(PartitionSizing sizing) {
  switch (sizing) {
    case PartitionSizing::kBandwidthWeighted:
      return "bandwidth-weighted";
    case PartitionSizing::kEqual:
      return "equal";
  }
  return "?";
}

// --- ClusterBackend ---------------------------------------------------------

ClusterBackend::ClusterBackend(const std::vector<topo::Topology>& servers,
                               const sim::Fabric& fabric,
                               const ClusterOptions& options)
    : servers_(servers),
      fabric_(fabric),
      treegen_(options.treegen),
      codegen_(options.codegen),
      phase2_(options.phase2),
      pipeline_(options.pipeline),
      all_to_all_max_servers_(options.all_to_all_max_servers),
      partition_sizing_(options.partition_sizing),
      min_partition_share_(options.min_partition_share) {
  planner_threads_ =
      options.engine.planner_threads >= 1
          ? static_cast<std::size_t>(options.engine.planner_threads)
          : common::ThreadPool::default_threads();
  // TreeGen fans out its internal searches at the same width; not
  // fingerprinted, never changes trees.
  treegen_.max_workers = static_cast<int>(planner_threads_);
  int min_gpus = servers_.front().num_gpus;
  for (const auto& s : servers_) min_gpus = std::min(min_gpus, s.num_gpus);
  // One partition per server-local root; every server must host a root for
  // every partition (Figure 10 uses one partition per GPU on equal servers).
  num_partitions_ = min_gpus;
  // Tree generation plans against these copies, not servers_: health events
  // rewrite them (failed links/GPUs erased) while the engine's fabric keeps
  // the full structural topology.
  planning_topos_ = servers_;
}

bool ClusterBackend::supports(CollectiveKind kind) const {
  (void)kind;  // every kind has a three-phase lowering
  return true;
}

std::uint64_t ClusterBackend::planning_fingerprint() const {
  FingerprintHasher fp;
  hash_options(treegen_, &fp);
  hash_options(codegen_, &fp);
  // The phase-2 exchange policy and the partition-sizing policy change what
  // lower() emits for a given shape: two engines differing in either must
  // never share a plan store.
  fp.i32(static_cast<int>(phase2_));
  // Chunk pipelining rewrites every cross-phase gate; off must keep loading
  // the historical whole-partition schedules, so the knob separates stores.
  fp.i32(pipeline_ ? 1 : 0);
  fp.i32(all_to_all_max_servers_);
  fp.i32(static_cast<int>(partition_sizing_));
  fp.f64(min_partition_share_);
  return fp.value();
}

const ClusterBackend::TreeSetPtr& ClusterBackend::tree_set(int server,
                                                           int root) {
  const auto key = std::make_pair(server, root);
  {
    const std::lock_guard<std::mutex> lock(sets_mu_);
    const auto it = sets_.find(key);
    if (it != sets_.end()) return it->second;
  }
  // Single-flight the build: racers on one (server, root) share the one
  // TreeGen run; distinct pairs generate concurrently.
  sets_flight_.run(key, [&]() -> TreeSetPtr {
    // Snapshot the planning topology under the lock — a health event may
    // swap it (never mutate it in place) between builds.
    const topo::Topology topo = [&] {
      const std::lock_guard<std::mutex> lock(sets_mu_);
      return at(planning_topos_, server);
    }();
    TreeGenOptions opts = treegen_;
    opts.link = topo::LinkType::kNVLink;
    tree_builds_.fetch_add(1);
    TreeSet set = generate_trees(topo, root, opts);
    if (set.empty()) {
      opts.link = topo::LinkType::kPCIe;
      tree_builds_.fetch_add(1);
      set = generate_trees(topo, root, opts);
    }
    auto ptr = std::make_shared<const TreeSet>(std::move(set));
    const std::lock_guard<std::mutex> lock(sets_mu_);
    return sets_.emplace(key, std::move(ptr)).first->second;
  });
  // Map nodes are stable and never erased, so the reference outlives the
  // lock.
  const std::lock_guard<std::mutex> lock(sets_mu_);
  return sets_.at(key);
}

const std::vector<double>& ClusterBackend::partition_shares() {
  const std::lock_guard<std::mutex> lock(shares_mu_);
  if (!shares_valid_) {
    compute_shares();
    shares_valid_ = true;
  }
  // Safe to return by reference: shares_ is only rewritten under shares_mu_
  // before shares_valid_ flips (first call, or a health event under the
  // engine's repair quiesce with no lowering in flight).
  return shares_;
}

void ClusterBackend::compute_shares() {
  const int k = num_partitions_;
  shares_.assign(static_cast<std::size_t>(k), 1.0 / k);
  if (partition_sizing_ == PartitionSizing::kEqual || k == 1) return;

  // Warm every (server, partition-root) tree set across the planner pool
  // before the serial probe scan below reads the rates; tree_set() is
  // single-flighted, so this only parallelizes the cold builds.
  const int n_srv = static_cast<int>(servers_.size());
  common::parallel_for(
      static_cast<std::size_t>(n_srv) * static_cast<std::size_t>(k),
      planner_threads_, [&](std::size_t i) {
        const int s = static_cast<int>(i) / k;
        const int p = static_cast<int>(i) % k;
        const topo::Topology& server = at(servers_, s);
        if (server.num_gpus > 1) tree_set(s, p % server.num_gpus);
      });

  // Measure each server's intra-server bandwidth: the packed-tree rate at
  // its partition roots (TreeSet::rate, the link-rate probe TreeGen runs
  // while packing). Single-GPU servers have no local tree phase to bound.
  // With heterogeneous per-server NIC rates each server's effective rate
  // additionally folds its NIC in harmonically — a partition pays the local
  // phase and the NIC phase back to back, so the rates compose serially. On
  // a uniform-NIC fabric the probe-only path is untouched, so those
  // clusters keep sizing bit-for-bit as before.
  const bool nic_aware = fabric_.heterogeneous_nics();
  double r_min = std::numeric_limits<double>::infinity();
  double r_max = 0.0;
  bool any_probe = false;
  for (int s = 0; s < static_cast<int>(servers_.size()); ++s) {
    const topo::Topology& server = at(servers_, s);
    double local_rate = std::numeric_limits<double>::infinity();
    bool found = false;
    if (server.num_gpus > 1) {
      for (int p = 0; p < k; ++p) {
        const TreeSetPtr& set = tree_set(s, p % server.num_gpus);
        if (set->empty() || !(set->rate > 0.0)) continue;  // unusable probe
        local_rate = std::min(local_rate, set->rate);
        found = true;
      }
    }
    double server_rate = local_rate;
    if (nic_aware) {
      // A single-GPU server (or one with no usable probe) has no local
      // phase: its NIC rate alone bounds the partition.
      const double nic = fabric_.nic_rate(s);
      server_rate = found ? 1.0 / (1.0 / local_rate + 1.0 / nic) : nic;
    } else if (!found) {
      continue;
    }
    r_min = std::min(r_min, server_rate);
    r_max = std::max(r_max, server_rate);
    any_probe = true;
  }
  // A balanced cluster (or one with no usable probes) keeps the equal
  // split, bit-for-bit: the old behaviour is the fixed point.
  if (!any_probe || !(r_max > r_min)) return;

  // Unequal servers: per-server local work is irreducible (every server
  // reduces and broadcasts the whole buffer), so the win comes from
  // pipelining — staggering partition sizes so the earliest partitions
  // clear the slow server's local phase while later ones still reduce,
  // keeping the NICs and the slow box busy simultaneously instead of in
  // lockstep. The stagger is a geometric ramp whose ratio is the measured
  // bandwidth imbalance, q in (1, 2): near-equal clusters barely deviate
  // from the equal split, a badly mismatched cluster staggers by up to 2x
  // per partition.
  const double q = 1.0 + (r_max - r_min) / (r_max + r_min);
  std::vector<double> weight(static_cast<std::size_t>(k));
  double w = 1.0;
  for (int p = k - 1; p >= 0; --p) {
    at(weight, p) = w;
    w *= q;
  }
  // Floor every share at min_partition_share of an equal share, then hand
  // out the remainder proportionally — shares sum to 1 exactly and no
  // partition starves however steep the ramp.
  const double floor = min_partition_share_ / k;
  double total = 0.0;
  for (const double v : weight) total += v;
  for (int p = 0; p < k; ++p) {
    at(shares_, p) = floor + (1.0 - k * floor) * at(weight, p) / total;
  }
}

void ClusterBackend::refresh_server(int server,
                                    std::vector<TreeSetPtr>* stale) {
  std::vector<std::pair<std::pair<int, int>, TreeSetPtr>> cached;
  const topo::Topology topo = fabric_.healthy_topology(server);
  {
    const std::lock_guard<std::mutex> lock(sets_mu_);
    at(planning_topos_, server) = topo;
    for (const auto& [key, ptr] : sets_) {
      if (key.first == server) cached.emplace_back(key, ptr);
    }
  }
  for (const auto& [key, old_set] : cached) {
    TreeGenOptions opts = treegen_;
    opts.link = topo::LinkType::kNVLink;
    tree_builds_.fetch_add(1);
    TreeSet set = generate_trees(topo, key.second, opts);
    if (set.empty()) {
      opts.link = topo::LinkType::kPCIe;
      tree_builds_.fetch_add(1);
      set = generate_trees(topo, key.second, opts);
    }
    // A rebuild that reproduced the cached trees (the failed hardware was
    // not load-bearing for this root) keeps the old set — pointer identity
    // included, so plans referencing it stay valid without recompiling.
    if (tree_sets_equal(*old_set, set)) continue;
    stale->push_back(old_set);
    auto ptr = std::make_shared<const TreeSet>(std::move(set));
    const std::lock_guard<std::mutex> lock(sets_mu_);
    sets_[key] = std::move(ptr);
  }
}

HealthNotice ClusterBackend::on_health_event(
    const sim::HealthEvent& event, std::span<const int> affected_channels) {
  HealthNotice notice;
  switch (event.kind) {
    case sim::HealthEventKind::kDegradeLink:
      // Capacity-only: trees are planned against the topology's structural
      // bandwidths, not the fabric's live health, so no planning state moves
      // (the shares re-check below covers NIC-rate folding).
      break;
    case sim::HealthEventKind::kFailLink:
    case sim::HealthEventKind::kFailGpu: {
      // Structural: the affected servers' planning topologies lose the dead
      // links/GPUs and their cached tree sets rebuild; only sets whose trees
      // actually changed invalidate plans.
      std::vector<int> touched;
      for (const int c : affected_channels) {
        if (fabric_.is_nic_channel(c)) continue;
        const int s = fabric_.channel_server(c);
        if (s >= 0) touched.push_back(s);
      }
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()),
                    touched.end());
      for (const int s : touched) refresh_server(s, &notice.stale_tree_sets);
      break;
    }
    case sim::HealthEventKind::kRestoreAll: {
      // A plan that detoured around a failure (PCIe fallback, local_route
      // picks) carries no provenance tying it to the links just restored —
      // only a full recompile recovers the undegraded schedules.
      notice.all_stale = true;
      for (int s = 0; s < static_cast<int>(servers_.size()); ++s) {
        refresh_server(s, &notice.stale_tree_sets);
      }
      break;
    }
  }
  // Re-derive the partition shares when they were already measured: tree-set
  // rebuilds and NIC health changes both feed the sizing. If the split
  // moved, every plan partitions its payload differently — nothing cached
  // survives.
  {
    const std::lock_guard<std::mutex> lock(shares_mu_);
    if (shares_valid_) {
      const std::vector<double> before = shares_;
      compute_shares();
      if (shares_ != before) notice.all_stale = true;
    }
  }
  return notice;
}

std::vector<Phase2Strategy> ClusterBackend::candidate_strategies(
    CollectiveKind kind) const {
  const int n_srv = static_cast<int>(servers_.size());
  // The symmetric exchanges lower hierarchically via recursive doubling,
  // which pairs servers by XOR: power-of-two counts only. The rooted kinds
  // use binomial trees, which work at any count.
  const bool needs_pow2 = kind == CollectiveKind::kAllReduce ||
                          kind == CollectiveKind::kReduceScatter ||
                          kind == CollectiveKind::kAllGather;
  const bool hierarchical_ok = !needs_pow2 || is_power_of_two(n_srv);
  switch (phase2_) {
    case Phase2Policy::kAllToAll:
      return {Phase2Strategy::kAllToAll};
    case Phase2Policy::kRing:
      return {Phase2Strategy::kRing};
    case Phase2Policy::kHierarchical:
      if (!hierarchical_ok) return {};
      return {Phase2Strategy::kHierarchical};
    case Phase2Policy::kAuto:
      break;
  }
  std::vector<Phase2Strategy> candidates;
  // Past the threshold the flat exchange's quadratic NIC volume is not
  // worth measuring; the linear-volume schedules take over.
  if (n_srv <= all_to_all_max_servers_) {
    candidates.push_back(Phase2Strategy::kAllToAll);
  }
  candidates.push_back(Phase2Strategy::kRing);
  if (hierarchical_ok) candidates.push_back(Phase2Strategy::kHierarchical);
  return candidates;
}

// One lowering's emission state: the builder, result bookkeeping, and the
// phase emitters every kind composes. Partition p's server-local root is
// root_of(p, s); since num_partitions_ is the smallest server size, every
// server hosts every partition root. The cross-server (phase 2) exchanges
// dispatch on |strategy|.
struct ClusterBackend::Emit {
  ClusterBackend& be;
  ProgramBuilder builder;
  CollectiveResult meta;
  std::vector<TreeSetPtr> used;
  const Phase2Strategy strategy;
  const std::vector<double>& share;  // partition byte shares, sum 1
  const int k;      // data partitions
  const int n_srv;  // servers
  const bool pipeline;  // chunk-gated cross-phase pipelining (see Flow)
  int tag = 0;      // fresh stream per point-to-point transfer

  Emit(ClusterBackend& backend, Phase2Strategy phase2,
       const std::vector<double>& shares)
      : be(backend),
        builder(backend.fabric_, backend.codegen_),
        strategy(phase2),
        share(shares),
        k(backend.num_partitions_),
        n_srv(static_cast<int>(backend.servers_.size())),
        pipeline(backend.pipeline_) {}

  int gpus(int s) const {
    return at(be.servers_, s).num_gpus;
  }
  int total_gpus() const {
    int n = 0;
    for (int s = 0; s < n_srv; ++s) n += gpus(s);
    return n;
  }
  int root_of(int p, int s) const { return p % gpus(s); }
  // Partition p's slice of a |total|-byte buffer.
  double part(int p, double total) const { return total * at(share, p); }
  // The server |off| ring positions after |base|.
  int ring_at(int base, int off) const { return (base + off) % n_srv; }
  // First holder of partition p's ring chains. On uniform NICs: p % n_srv,
  // the historical round-robin that loads every NIC evenly. With
  // heterogeneous per-server NIC rates the chains instead start just after
  // the slowest NIC: ring offsets 0..n-3 send a partition twice (accumulate
  // then distribute) while offsets n-2 and n-1 send it once, so parking the
  // slowest NIC at the last offset halves its egress.
  int ring_start(int p) const {
    if (!be.fabric_.heterogeneous_nics()) return p % n_srv;
    int slow = 0;
    for (int s = 1; s < n_srv; ++s) {
      if (be.fabric_.nic_rate(s) < be.fabric_.nic_rate(slow)) slow = s;
    }
    return ring_at(slow, 1);
  }
  // Splits a global server-major GPU id into (server, local id).
  std::pair<int, int> locate(int global) const {
    int s = 0;
    while (global >= gpus(s)) global -= gpus(s++);
    return {s, global};
  }
  int global_of(int s, int local) const {
    int base = 0;
    for (int i = 0; i < s; ++i) base += gpus(i);
    return base + local;
  }

  const TreeSet& use_set(int s, int root) {
    const TreeSetPtr& set = be.tree_set(s, root);
    used.push_back(set);
    return *set;
  }

  std::vector<int> local_route(int s, int src, int dst) const {
    return be.fabric_.nvlink_adjacent(s, src, dst)
               ? be.fabric_.nvlink_route(s, src, dst)
               : be.fabric_.pcie_route(s, src, dst);
  }

  int join(std::vector<int> deps, const char* label) {
    return builder.delay(0.0, label, std::move(deps));
  }

  // Chunked reduce of |bytes| to local |root| over the server's packed
  // trees; the returned ops complete when the buffer is reduced at the root.
  std::vector<int> tree_reduce(int s, int root, double bytes) {
    std::vector<int> done;
    if (gpus(s) == 1) return done;  // nothing to reduce
    const TreeSet& set = use_set(s, root);
    if (set.empty()) {
      throw std::runtime_error("server has no connected fabric");
    }
    const auto trees = route_trees(be.fabric_, s, set);
    meta.num_trees += static_cast<int>(trees.size());
    double total_w = 0.0;
    for (const auto& t : trees) total_w += t.weight;
    for (const auto& tree : trees) {
      const double tree_bytes = bytes * tree.weight / total_w;
      const int chunks = builder.chunks_for(tree_bytes);
      const auto ops = builder.tree_reduce_chunks(tree, tree_bytes, chunks,
                                                  /*with_kernels=*/true);
      done.insert(done.end(), ops.begin(), ops.end());
    }
    return done;
  }

  // Chunked broadcast of |bytes| from local |root| over the packed trees,
  // every chunk gated on |gate| (-1: ungated).
  void tree_broadcast(int s, int root, double bytes, int gate) {
    if (gpus(s) == 1) return;
    const TreeSet& set = use_set(s, root);
    if (set.empty()) {
      throw std::runtime_error("server has no connected fabric");
    }
    const auto trees = route_trees(be.fabric_, s, set);
    meta.num_trees += static_cast<int>(trees.size());
    double total_w = 0.0;
    for (const auto& t : trees) total_w += t.weight;
    for (const auto& tree : trees) {
      const double tree_bytes = bytes * tree.weight / total_w;
      const int chunks = builder.chunks_for(tree_bytes);
      const std::vector<int> gates(static_cast<std::size_t>(chunks), gate);
      builder.tree_broadcast_chunks(tree, tree_bytes, chunks, gates);
    }
  }

  int copy(const std::vector<int>& route, double bytes, int gate) {
    const int chunks = builder.chunks_for(bytes);
    const std::vector<int> gates(static_cast<std::size_t>(chunks), gate);
    return builder.copy_chunks(route, bytes, chunks, tag++, gates).back();
  }
  // Chunked point-to-point copy within server |s| (gather/scatter phases).
  int local_copy(int s, int src, int dst, double bytes, int gate) {
    return copy(local_route(s, src, dst), bytes, gate);
  }
  // Chunked one-hop copy over the NICs.
  int nic_copy(int src_srv, int dst_srv, double bytes, int gate) {
    return copy(be.fabric_.nic_route(src_srv, dst_srv), bytes, gate);
  }

  // --- cross-phase chunk pipelining ----------------------------------------
  //
  // With ClusterOptions::pipeline on, the whole-partition joins between the
  // three phases become per-chunk gates. Each stage exposes its output as a
  // Flow — a completion-ordered view of a payload materializing somewhere —
  // and the next stage's chunk c waits only on the flow prefix covering its
  // own first c+1 chunks, so a ring hop forwards chunk c while the previous
  // hop still moves chunk c+1 and phase 3 broadcasts chunks as they reduce.
  //
  // Every consumer emits its chunks in order (copies share one in-order
  // stream; kernels are chained), so chunk c's dependency list only needs
  // the ops *newly* required beyond chunk c-1's — earlier prefixes carry
  // over transitively through the consumer's own stream order.

  struct Flow {
    std::vector<int> ops;       // completion ops, in expected finish order
    std::vector<double> bytes;  // payload made available by each op
    double ready_bytes = 0.0;   // payload resident from the start (no op)
    bool sequential = false;    // ops[i] done implies ops[0..i-1] done
    int depth = 0;              // chunk-gated stages this payload crossed
    double total() const {
      double t = ready_bytes;
      for (const double b : bytes) t += b;
      return t;
    }
  };

  // A payload resident before the schedule starts (a root's own buffer).
  static Flow resident(double bytes) {
    Flow f;
    f.ready_bytes = bytes;
    f.sequential = true;
    return f;
  }

  // The flow of one emitter's evenly-chunked op list.
  Flow even_flow(std::vector<int> ops, double total, bool sequential,
                 int depth) {
    Flow f;
    f.bytes.assign(ops.size(), total / static_cast<double>(ops.size()));
    f.ops = std::move(ops);
    f.sequential = sequential;
    f.depth = depth;
    note_depth(depth);
    return f;
  }

  // Flows landing at one place merge by op id — emission order stands in
  // for completion order across concurrent producers.
  static Flow merge(std::vector<Flow> parts) {
    Flow out;
    std::vector<std::pair<int, double>> items;
    for (Flow& f : parts) {
      out.ready_bytes += f.ready_bytes;
      out.depth = std::max(out.depth, f.depth);
      for (std::size_t i = 0; i < f.ops.size(); ++i) {
        items.emplace_back(f.ops[i], f.bytes[i]);
      }
    }
    std::sort(items.begin(), items.end());
    for (const auto& [op, b] : items) {
      out.ops.push_back(op);
      out.bytes.push_back(b);
    }
    out.sequential = out.ops.size() <= 1;
    return out;
  }

  void note_depth(int depth) {
    meta.pipeline_depth = std::max(meta.pipeline_depth, depth);
  }

  // Per-chunk dependency lists for an in-order consumer of |num_chunks|
  // chunks: chunk c lists the flow ops newly needed so that a fraction
  // (c+1)/num_chunks of the flow's payload is available. For sequential
  // flows the last new op subsumes the rest of the prefix.
  static std::vector<std::vector<int>> cut_gates(const Flow& flow,
                                                 int num_chunks) {
    std::vector<std::vector<int>> gates(static_cast<std::size_t>(num_chunks));
    if (flow.ops.empty()) return gates;
    const double total = flow.total();
    double avail = flow.ready_bytes;
    std::size_t next = 0;
    for (int c = 0; c < num_chunks; ++c) {
      // The 1e-9 slack keeps an exactly-matching chunk grid on both sides
      // from pulling one extra producer op through float rounding.
      const double need =
          total * (static_cast<double>(c + 1) / num_chunks) * (1.0 - 1e-9);
      auto& g = at(gates, c);
      while (next < flow.ops.size() && avail < need) {
        avail += at(flow.bytes, static_cast<int>(next));
        g.push_back(at(flow.ops, static_cast<int>(next)));
        ++next;
      }
      if (flow.sequential && g.size() > 1) g.erase(g.begin(), g.end() - 1);
    }
    return gates;
  }

  // A chunked copy gated chunk-by-chunk on |src|; the arrival flow is
  // sequential (the copies share one in-order stream). |chunk_counter| is
  // the per-phase meta counter the emitted chunks belong to.
  Flow copy_flow(const std::vector<int>& route, double bytes, const Flow& src,
                 int* chunk_counter) {
    const int chunks = builder.chunks_for(bytes);
    const auto gates = cut_gates(src, chunks);
    auto ops = builder.copy_chunks(route, bytes, chunks, tag++,
                                   std::span<const std::vector<int>>(gates));
    *chunk_counter += chunks;
    return even_flow(std::move(ops), bytes, /*sequential=*/true,
                     src.depth + 1);
  }
  Flow nic_copy_flow(int src_srv, int dst_srv, double bytes, const Flow& src) {
    return copy_flow(be.fabric_.nic_route(src_srv, dst_srv), bytes, src,
                     &meta.phase2_chunks);
  }

  // Per-chunk reduction of a |bytes| partition at (s, gpu): chunk c's
  // kernel waits on the matching chunk of every input flow. |kernel_bytes|
  // is the total input volume the kernels read.
  Flow reduce_flow(int s, int gpu, double bytes, double kernel_bytes,
                   const std::vector<const Flow*>& inputs) {
    const int chunks = builder.chunks_for(bytes);
    std::vector<std::vector<std::vector<int>>> gates;
    gates.reserve(inputs.size());
    int depth = 0;
    for (const Flow* f : inputs) {
      gates.push_back(cut_gates(*f, chunks));
      depth = std::max(depth, f->depth);
    }
    Flow out;
    int prev = -1;
    for (int c = 0; c < chunks; ++c) {
      std::vector<int> deps;
      for (const auto& g : gates) {
        const auto& cut = at(g, c);
        deps.insert(deps.end(), cut.begin(), cut.end());
      }
      // Chaining the chunk kernels keeps the output flow in completion
      // order (kernels run on private streams, so order is not otherwise
      // given) — the invariant the new-ops-only chunk gates rely on.
      if (prev >= 0) deps.push_back(prev);
      prev = builder.reduce_kernel(s, gpu, kernel_bytes / chunks,
                                   std::move(deps));
      out.ops.push_back(prev);
      out.bytes.push_back(bytes / chunks);
    }
    out.sequential = true;
    out.depth = depth + 1;
    note_depth(out.depth);
    return out;
  }

  // Phase-1 tree reduce as a flow: the per-tree per-chunk root reductions,
  // interleaved round-robin across trees — the trees run concurrently, so
  // round r of every tree lands in one wave, not tree after tree.
  Flow tree_reduce_flow(int s, int root, double bytes) {
    if (gpus(s) == 1) return resident(bytes);  // nothing to reduce
    const TreeSet& set = use_set(s, root);
    if (set.empty()) {
      throw std::runtime_error("server has no connected fabric");
    }
    const auto trees = route_trees(be.fabric_, s, set);
    meta.num_trees += static_cast<int>(trees.size());
    double total_w = 0.0;
    for (const auto& t : trees) total_w += t.weight;
    struct TreeOut {
      std::vector<int> ops;
      double chunk_bytes = 0.0;
    };
    std::vector<TreeOut> outs;
    std::size_t max_chunks = 0;
    for (const auto& tree : trees) {
      const double tree_bytes = bytes * tree.weight / total_w;
      const int chunks = builder.chunks_for(tree_bytes);
      TreeOut t;
      t.ops = builder.tree_reduce_chunks(tree, tree_bytes, chunks,
                                         /*with_kernels=*/true);
      t.chunk_bytes = tree_bytes / chunks;
      meta.phase1_chunks += chunks;
      max_chunks = std::max(max_chunks, t.ops.size());
      outs.push_back(std::move(t));
    }
    Flow out;
    for (std::size_t c = 0; c < max_chunks; ++c) {
      for (const TreeOut& t : outs) {
        if (c < t.ops.size()) {
          out.ops.push_back(t.ops[c]);
          out.bytes.push_back(t.chunk_bytes);
        }
      }
    }
    out.depth = 1;
    note_depth(1);
    return out;
  }

  // Phase-3 tree broadcast consuming |flow| chunk by chunk: each tree's
  // chunk c starts once the flow prefix covering it completed (multi-op
  // prefixes join into one gate op).
  void tree_broadcast_flow(int s, int root, double bytes, const Flow& flow) {
    if (gpus(s) == 1) return;
    const TreeSet& set = use_set(s, root);
    if (set.empty()) {
      throw std::runtime_error("server has no connected fabric");
    }
    const auto trees = route_trees(be.fabric_, s, set);
    meta.num_trees += static_cast<int>(trees.size());
    double total_w = 0.0;
    for (const auto& t : trees) total_w += t.weight;
    for (const auto& tree : trees) {
      const double tree_bytes = bytes * tree.weight / total_w;
      const int chunks = builder.chunks_for(tree_bytes);
      const auto cut = cut_gates(flow, chunks);
      std::vector<int> gates(static_cast<std::size_t>(chunks), -1);
      for (int c = 0; c < chunks; ++c) {
        const auto& deps = at(cut, c);
        if (deps.size() == 1) {
          at(gates, c) = deps.front();
        } else if (!deps.empty()) {
          at(gates, c) = join(deps, "chunk-gate");
        }
      }
      builder.tree_broadcast_chunks(tree, tree_bytes, chunks, gates);
      meta.phase3_chunks += chunks;
    }
    note_depth(flow.depth + 1);
  }

  // Per-server tree reduce of every partition — phase 1 of the reducing
  // kinds. Fills phase1[p][s] (the tree ops) and joins[p][s] (a single op
  // gating on all of them).
  void reduce_phase1(double total,
                     std::vector<std::vector<std::vector<int>>>* phase1,
                     std::vector<std::vector<int>>* joins) {
    phase1->assign(static_cast<std::size_t>(k),
                   std::vector<std::vector<int>>(static_cast<std::size_t>(n_srv)));
    joins->assign(static_cast<std::size_t>(k),
                  std::vector<int>(static_cast<std::size_t>(n_srv), -1));
    for (int p = 0; p < k; ++p) {
      for (int s = 0; s < n_srv; ++s) {
        at(at(*phase1, p), s) = tree_reduce(s, root_of(p, s), part(p, total));
        // The transfer may start only once the whole partition is reduced
        // locally; partitions still pipeline against each other.
        at(at(*joins, p), s) = join(at(at(*phase1, p), s), "phase1-join");
      }
    }
  }

  // Phases 1+2 shared by AllReduce and ReduceScatter: per-server tree reduce
  // of every partition, then the cross-server exchange with reductions so
  // every server ends up holding the full sum of its partitions. Returns op
  // [p][s] whose completion means "partition p fully reduced at
  // root_of(p, s)". The exchange dispatches on the phase-2 strategy.
  std::vector<std::vector<int>> reduce_exchange(double total) {
    std::vector<std::vector<std::vector<int>>> phase1;
    std::vector<std::vector<int>> joins;
    reduce_phase1(total, &phase1, &joins);
    std::vector<std::vector<int>> reduced(
        static_cast<std::size_t>(k),
        std::vector<int>(static_cast<std::size_t>(n_srv), -1));
    for (int p = 0; p < k; ++p) {
      const double pb = part(p, total);
      switch (strategy) {
        case Phase2Strategy::kAllToAll:
          exchange_all_to_all(p, pb, at(phase1, p), at(joins, p),
                              &at(reduced, p));
          break;
        case Phase2Strategy::kRing:
          exchange_ring(p, pb, at(joins, p), &at(reduced, p));
          break;
        case Phase2Strategy::kHierarchical:
          exchange_recursive_doubling(p, pb, at(joins, p), &at(reduced, p));
          break;
        case Phase2Strategy::kNone:
          throw std::logic_error("cluster exchange needs a strategy");
      }
    }
    return reduced;
  }

  // The flat exchange: every server sends its partial to every other and
  // reduces the n_srv partials it holds. O(n^2) total NIC volume, one step.
  void exchange_all_to_all(int p, double pb,
                           const std::vector<std::vector<int>>& phase1,
                           const std::vector<int>& joins,
                           std::vector<int>* reduced) {
    std::vector<std::vector<int>> arrivals(static_cast<std::size_t>(n_srv));
    for (int src = 0; src < n_srv; ++src) {
      for (int dst = 0; dst < n_srv; ++dst) {
        if (dst == src) continue;
        at(arrivals, dst).push_back(nic_copy(src, dst, pb, at(joins, src)));
      }
    }
    for (int s = 0; s < n_srv; ++s) {
      // The kernel needs every local tree's reduction, not just the last
      // emitted one: the trees run on independent streams.
      auto deps = at(arrivals, s);
      const auto& own = at(phase1, s);
      deps.insert(deps.end(), own.begin(), own.end());
      at(*reduced, s) = builder.reduce_kernel(s, root_of(p, s), pb * n_srv,
                                              std::move(deps));
    }
  }

  // The ring exchange: an accumulate pass threads the partial around the
  // ring, reducing at each hop, then a distribute pass forwards the full
  // sum the rest of the way. Every server sends the partition at most
  // twice, so total NIC volume is O(n) — linear in the server count — at
  // the price of 2(n-1) pipelined steps. Partition p's chain starts at
  // ring_start(p): round-robin on uniform NICs so concurrent partitions
  // load every NIC evenly, just past the slowest NIC when rates differ.
  void exchange_ring(int p, double pb, const std::vector<int>& joins,
                     std::vector<int>* reduced) {
    const int start = ring_start(p);
    int holder = start;
    int carry = at(joins, start);
    for (int i = 1; i < n_srv; ++i) {
      const int next = ring_at(holder, 1);
      const int arrive = nic_copy(holder, next, pb, carry);
      carry = builder.reduce_kernel(next, root_of(p, next), pb * 2,
                                    {at(joins, next), arrive});
      holder = next;
    }
    at(*reduced, holder) = carry;  // the full sum lives here first
    for (int i = 1; i < n_srv; ++i) {
      const int next = ring_at(holder, 1);
      carry = nic_copy(holder, next, pb, carry);
      at(*reduced, next) = carry;
      holder = next;
    }
  }

  // The recursive-doubling exchange (power-of-two server counts): log2(n)
  // rounds of pairwise partial swaps, each server reducing what it receives
  // into what it holds. O(n log n) total NIC volume, log2(n) steps.
  void exchange_recursive_doubling(int p, double pb,
                                   const std::vector<int>& joins,
                                   std::vector<int>* reduced) {
    std::vector<int> holding = joins;
    for (int r = 1; r < n_srv; r <<= 1) {
      std::vector<int> next(static_cast<std::size_t>(n_srv));
      for (int s = 0; s < n_srv; ++s) {
        const int peer = s ^ r;
        const int arrive = nic_copy(peer, s, pb, at(holding, peer));
        at(next, s) = builder.reduce_kernel(s, root_of(p, s), pb * 2,
                                            {at(holding, s), arrive});
      }
      holding = std::move(next);
    }
    *reduced = holding;
  }

  // Phase-2 fan-out for Broadcast: delivers partition p (resident on server
  // |sr|) to every other server, returning the arrival op per server (-1 at
  // |sr|). Direct fan-out under all-to-all, chain forwarding under ring
  // (root egress O(1)), binomial tree under hierarchical (log2(n) steps,
  // any server count).
  std::vector<int> fan_out(int sr, double pb) {
    std::vector<int> arrival(static_cast<std::size_t>(n_srv), -1);
    switch (strategy) {
      case Phase2Strategy::kAllToAll:
        for (int s = 0; s < n_srv; ++s) {
          if (s == sr) continue;
          at(arrival, s) = nic_copy(sr, s, pb, -1);
        }
        break;
      case Phase2Strategy::kRing: {
        int gate = -1;
        int cur = sr;
        for (int i = 1; i < n_srv; ++i) {
          const int next = ring_at(cur, 1);
          gate = nic_copy(cur, next, pb, gate);
          at(arrival, next) = gate;
          cur = next;
        }
        break;
      }
      case Phase2Strategy::kHierarchical:
        binomial_spread(sr, 0, n_srv, -1, pb, &arrival);
        break;
      case Phase2Strategy::kNone:
        throw std::logic_error("cluster exchange needs a strategy");
    }
    return arrival;
  }

  // Binomial broadcast over ring offsets [off, off + count) from |sr|: the
  // holder at |off| sends to the far half's first server, both halves
  // recurse. Works for any server count.
  void binomial_spread(int sr, int off, int count, int gate, double pb,
                       std::vector<int>* arrival) {
    if (count <= 1) return;
    const int near = count - count / 2;  // holder keeps the larger half
    const int dst_off = off + near;
    const int a = nic_copy(ring_at(sr, off), ring_at(sr, dst_off), pb, gate);
    at(*arrival, ring_at(sr, dst_off)) = a;
    binomial_spread(sr, dst_off, count / 2, a, pb, arrival);
    binomial_spread(sr, off, near, gate, pb, arrival);
  }

  // Phase-2 convergence for Reduce: every server's partial of partition p
  // reaches |sr| reduced into one sum; returns the final kernel's op id.
  // Direct convergence under all-to-all (root ingress O(n)), chain with
  // en-route reduction under ring (root ingress O(1)), binomial reduction
  // tree under hierarchical.
  int converge_reduce(int p, double pb, int sr,
                      const std::vector<int>& joins) {
    switch (strategy) {
      case Phase2Strategy::kAllToAll: {
        // The root's own join covers every local tree's reduction — the
        // trees run on independent streams — and keeps the per-(p, s)
        // joins fully consumed (sr is the only server that never sends).
        std::vector<int> deps{at(joins, sr)};
        for (int s = 0; s < n_srv; ++s) {
          if (s == sr) continue;
          deps.push_back(nic_copy(s, sr, pb, at(joins, s)));
        }
        return builder.reduce_kernel(sr, root_of(p, sr), pb * n_srv,
                                     std::move(deps));
      }
      case Phase2Strategy::kRing: {
        // Accumulate along the ring from the server after |sr| all the way
        // around; every hop reduces the carried partial into the local one.
        int holder = ring_at(sr, 1);
        int carry = at(joins, holder);
        for (int i = 2; i < n_srv; ++i) {
          const int next = ring_at(sr, i);
          const int arrive = nic_copy(holder, next, pb, carry);
          carry = builder.reduce_kernel(next, root_of(p, next), pb * 2,
                                        {at(joins, next), arrive});
          holder = next;
        }
        const int arrive = nic_copy(holder, sr, pb, carry);
        return builder.reduce_kernel(sr, root_of(p, sr), pb * 2,
                                     {at(joins, sr), arrive});
      }
      case Phase2Strategy::kHierarchical:
        return binomial_collect(p, pb, sr, 0, n_srv, joins);
      case Phase2Strategy::kNone:
        break;
    }
    throw std::logic_error("cluster exchange needs a strategy");
  }

  // Binomial reduction over ring offsets [off, off + count) toward the
  // server at |off|; returns the op holding that segment's sum there.
  int binomial_collect(int p, double pb, int sr, int off, int count,
                       const std::vector<int>& joins) {
    const int s = ring_at(sr, off);
    if (count <= 1) return at(joins, s);
    const int near = count - count / 2;
    const int src_off = off + near;
    const int have = binomial_collect(p, pb, sr, off, near, joins);
    const int far = binomial_collect(p, pb, sr, src_off, count / 2, joins);
    const int arrive = nic_copy(ring_at(sr, src_off), s, pb, far);
    return builder.reduce_kernel(s, root_of(p, s), pb * 2, {have, arrive});
  }

  // Phase 1 shared by AllGather and Gather: each local GPU g (contributing
  // to partition g % k) copies its buffer to the partition's local root.
  // Fills |count| (GPUs per partition per server) and returns the copy ops
  // per (p, s).
  std::vector<std::vector<std::vector<int>>> gather_to_roots(
      double bytes, std::vector<std::vector<int>>* count) {
    count->assign(static_cast<std::size_t>(k),
                  std::vector<int>(static_cast<std::size_t>(n_srv), 0));
    std::vector<std::vector<std::vector<int>>> gathered(
        static_cast<std::size_t>(k),
        std::vector<std::vector<int>>(static_cast<std::size_t>(n_srv)));
    for (int s = 0; s < n_srv; ++s) {
      for (int g = 0; g < gpus(s); ++g) {
        const int p = g % k;
        ++at(at(*count, p), s);
        if (g != root_of(p, s)) {
          at(at(gathered, p), s)
              .push_back(local_copy(s, g, root_of(p, s), bytes, -1));
        }
      }
    }
    return gathered;
  }

  // Phase-2 block exchange for AllGather: every server's per-partition
  // block reaches every other server. Fills arrivals[s] with ops that
  // complete once all foreign blocks of partition p landed on s. Direct
  // under all-to-all; blocks circulate hop by hop under ring (same total
  // volume — AllGather moves every block everywhere regardless — but
  // pipelined); recursive doubling under hierarchical (power-of-two).
  void exchange_blocks(int p, double bytes,
                       const std::vector<std::vector<int>>& count,
                       const std::vector<std::vector<int>>& gathered,
                       std::vector<std::vector<int>>* arrivals) {
    const auto gate_of = [&](int src) {
      return join(at(gathered, src), "gather-join");
    };
    switch (strategy) {
      case Phase2Strategy::kAllToAll:
        for (int src = 0; src < n_srv; ++src) {
          const int gate = gate_of(src);
          const double block = at(at(count, p), src) * bytes;
          for (int dst = 0; dst < n_srv; ++dst) {
            if (dst == src) continue;
            at(*arrivals, dst).push_back(nic_copy(src, dst, block, gate));
          }
        }
        break;
      case Phase2Strategy::kRing:
        for (int src = 0; src < n_srv; ++src) {
          const double block = at(at(count, p), src) * bytes;
          int gate = gate_of(src);
          int cur = src;
          for (int i = 1; i < n_srv; ++i) {
            const int next = ring_at(cur, 1);
            gate = nic_copy(cur, next, block, gate);
            at(*arrivals, next).push_back(gate);
            cur = next;
          }
        }
        break;
      case Phase2Strategy::kHierarchical: {
        // Round r: each server swaps everything it holds with its XOR
        // partner, doubling its blocks; after log2(n) rounds every block is
        // everywhere.
        std::vector<double> held(static_cast<std::size_t>(n_srv));
        std::vector<int> ready(static_cast<std::size_t>(n_srv));
        for (int s = 0; s < n_srv; ++s) {
          at(held, s) = at(at(count, p), s) * bytes;
          at(ready, s) = gate_of(s);
        }
        for (int r = 1; r < n_srv; r <<= 1) {
          std::vector<double> next_held = held;
          std::vector<int> next_ready(static_cast<std::size_t>(n_srv));
          for (int s = 0; s < n_srv; ++s) {
            const int peer = s ^ r;
            const int arrive = nic_copy(peer, s, at(held, peer),
                                        at(ready, peer));
            at(*arrivals, s).push_back(arrive);
            at(next_ready, s) = join({at(ready, s), arrive}, "exchange-join");
            at(next_held, s) = at(held, s) + at(held, peer);
          }
          held = std::move(next_held);
          ready = std::move(next_ready);
        }
        break;
      }
      case Phase2Strategy::kNone:
        throw std::logic_error("cluster exchange needs a strategy");
    }
  }

  // Phase-2 convergence for Gather: every server's per-partition block
  // reaches |sr|. Returns the arrival deps for the root's phase-3 copy.
  // Direct under all-to-all; chain forwarding with growing payload under
  // ring; binomial collection under hierarchical.
  std::vector<int> converge_blocks(int p, double bytes, int sr,
                                   const std::vector<std::vector<int>>& count,
                                   const std::vector<std::vector<int>>& gathered) {
    const auto gate_of = [&](int s) {
      return join(at(gathered, s), "gather-join");
    };
    const auto block_of = [&](int s) { return at(at(count, p), s) * bytes; };
    std::vector<int> arrivals;
    switch (strategy) {
      case Phase2Strategy::kAllToAll:
        for (int s = 0; s < n_srv; ++s) {
          if (s == sr) continue;
          arrivals.push_back(nic_copy(s, sr, block_of(s), gate_of(s)));
        }
        break;
      case Phase2Strategy::kRing: {
        // The chain walks the ring toward |sr|, each server forwarding the
        // accumulated foreign blocks together with its own.
        int holder = ring_at(sr, 1);
        double carried = block_of(holder);
        int carry = gate_of(holder);
        for (int i = 2; i < n_srv; ++i) {
          const int next = ring_at(sr, i);
          const int arrive = nic_copy(holder, next, carried, carry);
          carry = join({gate_of(next), arrive}, "exchange-join");
          carried += block_of(next);
          holder = next;
        }
        arrivals.push_back(nic_copy(holder, sr, carried, carry));
        break;
      }
      case Phase2Strategy::kHierarchical:
        arrivals.push_back(binomial_collect_blocks(p, bytes, sr, 0, n_srv,
                                                   count, gathered));
        break;
      case Phase2Strategy::kNone:
        throw std::logic_error("cluster exchange needs a strategy");
    }
    return arrivals;
  }

  // Binomial block collection toward the server at ring offset |off|;
  // returns an op that completes once every block of [off, off + count)
  // sits there, and adds that segment's bytes into the forwarded payload.
  int binomial_collect_blocks(int p, double bytes, int sr, int off, int count,
                              const std::vector<std::vector<int>>& count_tbl,
                              const std::vector<std::vector<int>>& gathered) {
    const int s = ring_at(sr, off);
    if (count <= 1) return join(at(gathered, s), "gather-join");
    const int near = count - count / 2;
    const int src_off = off + near;
    const int have = binomial_collect_blocks(p, bytes, sr, off, near,
                                             count_tbl, gathered);
    const int far = binomial_collect_blocks(p, bytes, sr, src_off, count / 2,
                                            count_tbl, gathered);
    double segment = 0.0;
    for (int i = 0; i < count / 2; ++i) {
      segment += at(at(count_tbl, p), ring_at(sr, src_off + i)) * bytes;
    }
    const int arrive = nic_copy(ring_at(sr, src_off), s, segment, far);
    return join({have, arrive}, "exchange-join");
  }

  // --- the pipelined (chunk-gated) phase drivers ----------------------------

  // Phase 1 of the reducing kinds, flow form: flows[p][s] exposes partition
  // p's local reduction at root_of(p, s) chunk by chunk (replacing the
  // whole-partition join of reduce_phase1).
  std::vector<std::vector<Flow>> reduce_phase1_flows(double total) {
    std::vector<std::vector<Flow>> flows(
        static_cast<std::size_t>(k),
        std::vector<Flow>(static_cast<std::size_t>(n_srv)));
    for (int p = 0; p < k; ++p) {
      for (int s = 0; s < n_srv; ++s) {
        at(at(flows, p), s) =
            tree_reduce_flow(s, root_of(p, s), part(p, total));
      }
    }
    return flows;
  }

  // Phases 1+2 of AllReduce/ReduceScatter, flow form: every NIC transfer
  // gates chunk-by-chunk on the matching phase-1 chunks, ring hops
  // store-and-forward per chunk (hop h moves chunk c while hop h+1 moves
  // chunk c-1), and the per-hop reductions run as chunk kernel chains.
  std::vector<std::vector<Flow>> reduce_exchange_flows(double total) {
    auto local = reduce_phase1_flows(total);
    std::vector<std::vector<Flow>> reduced(
        static_cast<std::size_t>(k),
        std::vector<Flow>(static_cast<std::size_t>(n_srv)));
    for (int p = 0; p < k; ++p) {
      const double pb = part(p, total);
      const auto& mine = at(local, p);
      auto& out = at(reduced, p);
      switch (strategy) {
        case Phase2Strategy::kAllToAll: {
          // Every pairwise partial streams out as its chunks reduce; each
          // destination reduces chunk c once every peer's chunk c landed.
          std::vector<std::vector<Flow>> arrive(
              static_cast<std::size_t>(n_srv));
          for (int src = 0; src < n_srv; ++src) {
            for (int dst = 0; dst < n_srv; ++dst) {
              if (dst == src) continue;
              at(arrive, dst).push_back(
                  nic_copy_flow(src, dst, pb, at(mine, src)));
            }
          }
          for (int s = 0; s < n_srv; ++s) {
            std::vector<const Flow*> in{&at(mine, s)};
            for (const Flow& f : at(arrive, s)) in.push_back(&f);
            at(out, s) = reduce_flow(s, root_of(p, s), pb, pb * n_srv, in);
          }
          break;
        }
        case Phase2Strategy::kRing: {
          const int start = ring_start(p);
          int holder = start;
          Flow carry = at(mine, start);
          for (int i = 1; i < n_srv; ++i) {
            const int next = ring_at(holder, 1);
            const Flow arrive = nic_copy_flow(holder, next, pb, carry);
            carry = reduce_flow(next, root_of(p, next), pb, pb * 2,
                                {&at(mine, next), &arrive});
            holder = next;
          }
          at(out, holder) = carry;  // the full sum lives here first
          for (int i = 1; i < n_srv; ++i) {
            const int next = ring_at(holder, 1);
            carry = nic_copy_flow(holder, next, pb, carry);
            at(out, next) = carry;
            holder = next;
          }
          break;
        }
        case Phase2Strategy::kHierarchical: {
          std::vector<Flow> holding = mine;
          for (int r = 1; r < n_srv; r <<= 1) {
            std::vector<Flow> next(static_cast<std::size_t>(n_srv));
            for (int s = 0; s < n_srv; ++s) {
              const int peer = s ^ r;
              const Flow arrive =
                  nic_copy_flow(peer, s, pb, at(holding, peer));
              at(next, s) = reduce_flow(s, root_of(p, s), pb, pb * 2,
                                        {&at(holding, s), &arrive});
            }
            holding = std::move(next);
          }
          out = std::move(holding);
          break;
        }
        case Phase2Strategy::kNone:
          throw std::logic_error("cluster exchange needs a strategy");
      }
    }
    return reduced;
  }

  // Phase-2 fan-out for Broadcast, flow form: the arrival flow per server
  // (empty at |sr|); under ring, hop h forwards chunk c while hop h-1
  // still receives chunk c+1.
  std::vector<Flow> fan_out_flows(int sr, double pb) {
    std::vector<Flow> arrival(static_cast<std::size_t>(n_srv));
    const Flow src = resident(pb);
    switch (strategy) {
      case Phase2Strategy::kAllToAll:
        for (int s = 0; s < n_srv; ++s) {
          if (s == sr) continue;
          at(arrival, s) = nic_copy_flow(sr, s, pb, src);
        }
        break;
      case Phase2Strategy::kRing: {
        Flow cur = src;
        int holder = sr;
        for (int i = 1; i < n_srv; ++i) {
          const int next = ring_at(holder, 1);
          cur = nic_copy_flow(holder, next, pb, cur);
          at(arrival, next) = cur;
          holder = next;
        }
        break;
      }
      case Phase2Strategy::kHierarchical:
        binomial_spread_flow(sr, 0, n_srv, src, pb, &arrival);
        break;
      case Phase2Strategy::kNone:
        throw std::logic_error("cluster exchange needs a strategy");
    }
    return arrival;
  }

  void binomial_spread_flow(int sr, int off, int count, const Flow& gate,
                            double pb, std::vector<Flow>* arrival) {
    if (count <= 1) return;
    const int near = count - count / 2;  // holder keeps the larger half
    const int dst_off = off + near;
    const Flow a =
        nic_copy_flow(ring_at(sr, off), ring_at(sr, dst_off), pb, gate);
    at(*arrival, ring_at(sr, dst_off)) = a;
    binomial_spread_flow(sr, dst_off, count / 2, a, pb, arrival);
    binomial_spread_flow(sr, off, near, gate, pb, arrival);
  }

  // Phase-2 convergence for Reduce, flow form: partition p's full sum
  // materializing at |sr| chunk by chunk.
  Flow converge_reduce_flow(int p, double pb, int sr,
                            const std::vector<Flow>& local) {
    switch (strategy) {
      case Phase2Strategy::kAllToAll: {
        std::vector<Flow> arrive;
        arrive.reserve(static_cast<std::size_t>(n_srv));
        for (int s = 0; s < n_srv; ++s) {
          if (s == sr) continue;
          arrive.push_back(nic_copy_flow(s, sr, pb, at(local, s)));
        }
        std::vector<const Flow*> in{&at(local, sr)};
        for (const Flow& f : arrive) in.push_back(&f);
        return reduce_flow(sr, root_of(p, sr), pb, pb * n_srv, in);
      }
      case Phase2Strategy::kRing: {
        int holder = ring_at(sr, 1);
        Flow carry = at(local, holder);
        for (int i = 2; i < n_srv; ++i) {
          const int next = ring_at(sr, i);
          const Flow arrive = nic_copy_flow(holder, next, pb, carry);
          carry = reduce_flow(next, root_of(p, next), pb, pb * 2,
                              {&at(local, next), &arrive});
          holder = next;
        }
        const Flow arrive = nic_copy_flow(holder, sr, pb, carry);
        return reduce_flow(sr, root_of(p, sr), pb, pb * 2,
                           {&at(local, sr), &arrive});
      }
      case Phase2Strategy::kHierarchical:
        return binomial_collect_flow(p, pb, sr, 0, n_srv, local);
      case Phase2Strategy::kNone:
        break;
    }
    throw std::logic_error("cluster exchange needs a strategy");
  }

  Flow binomial_collect_flow(int p, double pb, int sr, int off, int count,
                             const std::vector<Flow>& local) {
    const int s = ring_at(sr, off);
    if (count <= 1) return at(local, s);
    const int near = count - count / 2;
    const int src_off = off + near;
    const Flow have = binomial_collect_flow(p, pb, sr, off, near, local);
    const Flow far =
        binomial_collect_flow(p, pb, sr, src_off, count / 2, local);
    const Flow arrive = nic_copy_flow(ring_at(sr, src_off), s, pb, far);
    return reduce_flow(s, root_of(p, s), pb, pb * 2, {&have, &arrive});
  }

  // Phase 1 of AllGather/Gather, flow form: flows[p][s] is partition p's
  // local block (count[p][s] * bytes) materializing at root_of(p, s) — the
  // root's own buffer resident, every other contributor streaming in.
  std::vector<std::vector<Flow>> gather_to_roots_flows(
      double bytes, std::vector<std::vector<int>>* count) {
    count->assign(static_cast<std::size_t>(k),
                  std::vector<int>(static_cast<std::size_t>(n_srv), 0));
    std::vector<std::vector<std::vector<Flow>>> parts(
        static_cast<std::size_t>(k),
        std::vector<std::vector<Flow>>(static_cast<std::size_t>(n_srv)));
    for (int s = 0; s < n_srv; ++s) {
      for (int g = 0; g < gpus(s); ++g) {
        const int p = g % k;
        ++at(at(*count, p), s);
        if (g == root_of(p, s)) {
          at(at(parts, p), s).push_back(resident(bytes));
        } else {
          at(at(parts, p), s)
              .push_back(copy_flow(local_route(s, g, root_of(p, s)), bytes,
                                   resident(bytes), &meta.phase1_chunks));
        }
      }
    }
    std::vector<std::vector<Flow>> flows(
        static_cast<std::size_t>(k),
        std::vector<Flow>(static_cast<std::size_t>(n_srv)));
    for (int p = 0; p < k; ++p) {
      for (int s = 0; s < n_srv; ++s) {
        at(at(flows, p), s) = merge(std::move(at(at(parts, p), s)));
      }
    }
    return flows;
  }

  // Phase-2 block exchange for AllGather, flow form: arrivals[s] collects
  // the foreign-block flows landing on s, each gated chunk-by-chunk on its
  // source block's own gathering.
  void exchange_blocks_flows(int p, double bytes,
                             const std::vector<std::vector<int>>& count,
                             const std::vector<Flow>& gathered,
                             std::vector<std::vector<Flow>>* arrivals) {
    const auto block_of = [&](int s) { return at(at(count, p), s) * bytes; };
    switch (strategy) {
      case Phase2Strategy::kAllToAll:
        for (int src = 0; src < n_srv; ++src) {
          for (int dst = 0; dst < n_srv; ++dst) {
            if (dst == src) continue;
            at(*arrivals, dst)
                .push_back(
                    nic_copy_flow(src, dst, block_of(src), at(gathered, src)));
          }
        }
        break;
      case Phase2Strategy::kRing:
        for (int src = 0; src < n_srv; ++src) {
          Flow cur = at(gathered, src);
          int holder = src;
          for (int i = 1; i < n_srv; ++i) {
            const int next = ring_at(holder, 1);
            cur = nic_copy_flow(holder, next, block_of(src), cur);
            at(*arrivals, next).push_back(cur);
            holder = next;
          }
        }
        break;
      case Phase2Strategy::kHierarchical: {
        std::vector<Flow> held = gathered;
        std::vector<double> held_bytes(static_cast<std::size_t>(n_srv));
        for (int s = 0; s < n_srv; ++s) at(held_bytes, s) = block_of(s);
        for (int r = 1; r < n_srv; r <<= 1) {
          std::vector<Flow> next_held(static_cast<std::size_t>(n_srv));
          std::vector<double> next_bytes = held_bytes;
          for (int s = 0; s < n_srv; ++s) {
            const int peer = s ^ r;
            Flow arrive =
                nic_copy_flow(peer, s, at(held_bytes, peer), at(held, peer));
            at(*arrivals, s).push_back(arrive);
            at(next_held, s) = merge({at(held, s), std::move(arrive)});
            at(next_bytes, s) += at(held_bytes, peer);
          }
          held = std::move(next_held);
          held_bytes = std::move(next_bytes);
        }
        break;
      }
      case Phase2Strategy::kNone:
        throw std::logic_error("cluster exchange needs a strategy");
    }
  }

  // Phase-2 convergence for Gather, flow form: partition p's cluster-wide
  // block — the root server's own included — materializing at |sr|.
  Flow converge_blocks_flows(int p, double bytes, int sr,
                             const std::vector<std::vector<int>>& count,
                             const std::vector<Flow>& gathered) {
    const auto block_of = [&](int s) { return at(at(count, p), s) * bytes; };
    switch (strategy) {
      case Phase2Strategy::kAllToAll: {
        std::vector<Flow> parts{at(gathered, sr)};
        for (int s = 0; s < n_srv; ++s) {
          if (s == sr) continue;
          parts.push_back(nic_copy_flow(s, sr, block_of(s), at(gathered, s)));
        }
        return merge(std::move(parts));
      }
      case Phase2Strategy::kRing: {
        int holder = ring_at(sr, 1);
        double carried = block_of(holder);
        Flow carry = at(gathered, holder);
        for (int i = 2; i < n_srv; ++i) {
          const int next = ring_at(sr, i);
          Flow arrive = nic_copy_flow(holder, next, carried, carry);
          carry = merge({at(gathered, next), std::move(arrive)});
          carried += block_of(next);
          holder = next;
        }
        Flow last = nic_copy_flow(holder, sr, carried, carry);
        return merge({at(gathered, sr), std::move(last)});
      }
      case Phase2Strategy::kHierarchical:
        return binomial_collect_blocks_flow(p, bytes, sr, 0, n_srv, count,
                                            gathered);
      case Phase2Strategy::kNone:
        break;
    }
    throw std::logic_error("cluster exchange needs a strategy");
  }

  Flow binomial_collect_blocks_flow(
      int p, double bytes, int sr, int off, int count,
      const std::vector<std::vector<int>>& count_tbl,
      const std::vector<Flow>& gathered) {
    const int s = ring_at(sr, off);
    if (count <= 1) return at(gathered, s);
    const int near = count - count / 2;
    const int src_off = off + near;
    Flow have = binomial_collect_blocks_flow(p, bytes, sr, off, near,
                                             count_tbl, gathered);
    Flow far = binomial_collect_blocks_flow(p, bytes, sr, src_off, count / 2,
                                            count_tbl, gathered);
    double segment = 0.0;
    for (int i = 0; i < count / 2; ++i) {
      segment += at(at(count_tbl, p), ring_at(sr, src_off + i)) * bytes;
    }
    Flow arrive = nic_copy_flow(ring_at(sr, src_off), s, segment, far);
    return merge({std::move(have), std::move(arrive)});
  }

  // --- the six kinds --------------------------------------------------------

  void all_reduce(double bytes) {
    if (pipeline) {
      const auto reduced = reduce_exchange_flows(bytes);
      for (int p = 0; p < k; ++p) {
        for (int s = 0; s < n_srv; ++s) {
          tree_broadcast_flow(s, root_of(p, s), part(p, bytes),
                              at(at(reduced, p), s));
        }
      }
      return;
    }
    const auto reduced = reduce_exchange(bytes);
    for (int p = 0; p < k; ++p) {
      for (int s = 0; s < n_srv; ++s) {
        tree_broadcast(s, root_of(p, s), part(p, bytes), at(at(reduced, p), s));
      }
    }
  }

  void reduce_scatter(double bytes) {
    // Each GPU's output shard lives in the partition its global rank maps
    // to; one copy from that partition's local root delivers it. A shard's
    // offset inside its partition is data-layout dependent, so even under
    // pipelining the copy waits for the whole partition (the shard is far
    // below one chunk anyway, so there is nothing to overlap).
    const double shard = bytes / total_gpus();
    if (pipeline) {
      const auto reduced = reduce_exchange_flows(bytes);
      for (int s = 0; s < n_srv; ++s) {
        for (int g = 0; g < gpus(s); ++g) {
          const int p = global_of(s, g) % k;
          const int src = root_of(p, s);
          if (src != g) {
            copy_flow(local_route(s, src, g), shard, at(at(reduced, p), s),
                      &meta.phase3_chunks);
          }
        }
      }
      return;
    }
    const auto reduced = reduce_exchange(bytes);
    for (int s = 0; s < n_srv; ++s) {
      for (int g = 0; g < gpus(s); ++g) {
        const int p = global_of(s, g) % k;
        const int src = root_of(p, s);
        if (src != g) local_copy(s, src, g, shard, at(at(reduced, p), s));
      }
    }
  }

  void broadcast(double bytes, int root) {
    const auto [sr, lr] = locate(root);
    // No phase 1: the buffer is resident at the root. Phase 2 fans each
    // partition out to the other servers' partition roots; phase 3
    // broadcasts locally over every server's packed trees.
    tree_broadcast(sr, lr, bytes, -1);
    for (int p = 0; p < k; ++p) {
      const double pb = part(p, bytes);
      if (pipeline) {
        const auto arrival = fan_out_flows(sr, pb);
        for (int s = 0; s < n_srv; ++s) {
          if (s == sr) continue;
          tree_broadcast_flow(s, root_of(p, s), pb, at(arrival, s));
        }
        continue;
      }
      const auto arrival = fan_out(sr, pb);
      for (int s = 0; s < n_srv; ++s) {
        if (s == sr) continue;
        tree_broadcast(s, root_of(p, s), pb, at(arrival, s));
      }
    }
  }

  void reduce(double bytes, int root) {
    const auto [sr, lr] = locate(root);
    if (pipeline) {
      const auto flows = reduce_phase1_flows(bytes);
      for (int p = 0; p < k; ++p) {
        const double pb = part(p, bytes);
        const Flow summed = converge_reduce_flow(p, pb, sr, at(flows, p));
        if (root_of(p, sr) != lr) {
          copy_flow(local_route(sr, root_of(p, sr), lr), pb, summed,
                    &meta.phase3_chunks);
        }
      }
      return;
    }
    std::vector<std::vector<std::vector<int>>> phase1;
    std::vector<std::vector<int>> joins;
    reduce_phase1(bytes, &phase1, &joins);
    for (int p = 0; p < k; ++p) {
      const double pb = part(p, bytes);
      // Phase 2 converges the partials on the root server.
      const int kernel = converge_reduce(p, pb, sr, at(joins, p));
      // Phase 3: the reduced partitions converge on the root GPU.
      if (root_of(p, sr) != lr) {
        local_copy(sr, root_of(p, sr), lr, pb, kernel);
      }
    }
  }

  void all_gather(double bytes) {
    if (pipeline) {
      std::vector<std::vector<int>> count;
      const auto gathered = gather_to_roots_flows(bytes, &count);
      std::vector<int> cluster_count(static_cast<std::size_t>(k), 0);
      for (int p = 0; p < k; ++p) {
        for (int s = 0; s < n_srv; ++s) {
          at(cluster_count, p) += at(at(count, p), s);
        }
      }
      // Phase 2: exchange each server's per-partition block, every transfer
      // chunk-gated on its source block's own gathering.
      std::vector<std::vector<std::vector<Flow>>> arrivals(
          static_cast<std::size_t>(k),
          std::vector<std::vector<Flow>>(static_cast<std::size_t>(n_srv)));
      for (int p = 0; p < k; ++p) {
        exchange_blocks_flows(p, bytes, count, at(gathered, p),
                              &at(arrivals, p));
      }
      // Phase 3: broadcast each cluster-wide partition block locally as its
      // pieces land (resident + local copies + NIC arrivals merged).
      for (int s = 0; s < n_srv; ++s) {
        if (gpus(s) == 1) continue;
        for (int p = 0; p < k; ++p) {
          std::vector<Flow> parts = std::move(at(at(arrivals, p), s));
          parts.push_back(at(at(gathered, p), s));
          tree_broadcast_flow(s, root_of(p, s), at(cluster_count, p) * bytes,
                              merge(std::move(parts)));
        }
      }
      return;
    }
    std::vector<std::vector<int>> count;
    const auto gathered = gather_to_roots(bytes, &count);
    std::vector<int> cluster_count(static_cast<std::size_t>(k), 0);
    for (int p = 0; p < k; ++p) {
      for (int s = 0; s < n_srv; ++s) at(cluster_count, p) += at(at(count, p), s);
    }
    // Phase 2: exchange each server's per-partition block.
    std::vector<std::vector<std::vector<int>>> arrivals(
        static_cast<std::size_t>(k),
        std::vector<std::vector<int>>(static_cast<std::size_t>(n_srv)));
    for (int p = 0; p < k; ++p) {
      exchange_blocks(p, bytes, count, at(gathered, p), &at(arrivals, p));
    }
    // Phase 3: broadcast each cluster-wide partition block locally (on a
    // single-GPU server the blocks already landed at the only GPU).
    for (int s = 0; s < n_srv; ++s) {
      if (gpus(s) == 1) continue;
      for (int p = 0; p < k; ++p) {
        // Wait on every local copy into the partition root — they run on
        // independent streams — plus every NIC arrival.
        auto deps = at(at(arrivals, p), s);
        const auto& own = at(at(gathered, p), s);
        deps.insert(deps.end(), own.begin(), own.end());
        const int gate = join(std::move(deps), "exchange-join");
        tree_broadcast(s, root_of(p, s), at(cluster_count, p) * bytes, gate);
      }
    }
  }

  void gather(double bytes, int root) {
    const auto [sr, lr] = locate(root);
    if (pipeline) {
      std::vector<std::vector<int>> count;
      const auto gathered = gather_to_roots_flows(bytes, &count);
      for (int p = 0; p < k; ++p) {
        Flow conv =
            converge_blocks_flows(p, bytes, sr, count, at(gathered, p));
        if (root_of(p, sr) == lr) continue;
        double block = 0.0;
        for (int s = 0; s < n_srv; ++s) block += at(at(count, p), s) * bytes;
        copy_flow(local_route(sr, root_of(p, sr), lr), block, conv,
                  &meta.phase3_chunks);
      }
      return;
    }
    std::vector<std::vector<int>> count;
    const auto gathered = gather_to_roots(bytes, &count);
    // Phase 2: blocks converge on the root server's partition roots;
    // phase 3: the root GPU collects every partition's cluster-wide block.
    for (int p = 0; p < k; ++p) {
      auto deps = converge_blocks(p, bytes, sr, count, at(gathered, p));
      if (root_of(p, sr) == lr) continue;
      double block = 0.0;
      for (int s = 0; s < n_srv; ++s) block += at(at(count, p), s) * bytes;
      const auto& own = at(at(gathered, p), sr);
      deps.insert(deps.end(), own.begin(), own.end());
      const int gate = join(std::move(deps), "exchange-join");
      local_copy(sr, root_of(p, sr), lr, block, gate);
    }
  }
};

LoweredCollective ClusterBackend::lower_with(Phase2Strategy strategy,
                                             CollectiveKind kind, double bytes,
                                             int root) {
  Emit e(*this, strategy, partition_shares());
  switch (kind) {
    case CollectiveKind::kBroadcast:
      e.broadcast(bytes, root);
      break;
    case CollectiveKind::kGather:
      e.gather(bytes, root);
      break;
    case CollectiveKind::kReduce:
      e.reduce(bytes, root);
      break;
    case CollectiveKind::kAllReduce:
      e.all_reduce(bytes);
      break;
    case CollectiveKind::kAllGather:
      e.all_gather(bytes);
      break;
    case CollectiveKind::kReduceScatter:
      e.reduce_scatter(bytes);
      break;
  }
  LoweredCollective lowered;
  lowered.chunk_bytes = codegen_.chunk_bytes;
  lowered.phase2 = strategy;
  lowered.meta = e.meta;
  lowered.meta.bytes = bytes;
  const double heaviest_share =
      *std::max_element(partition_shares().begin(), partition_shares().end());
  lowered.meta.num_chunks = e.builder.chunks_for(bytes * heaviest_share);
  lowered.program = e.builder.take();
  lowered.meta.num_ops = static_cast<int>(lowered.program.ops().size());
  std::sort(e.used.begin(), e.used.end());
  e.used.erase(std::unique(e.used.begin(), e.used.end()), e.used.end());
  lowered.tree_sets = std::move(e.used);
  return lowered;
}

LoweredCollective ClusterBackend::lower(CollectiveKind kind, double bytes,
                                        int root) {
  // The engine validated bytes > 0 and the global root range. Kinds that
  // split the payload across partitions additionally need every partition
  // to carry at least one byte under an equal split (sizes that do not
  // divide evenly are split fractionally, never truncated); Gather/AllGather
  // move each GPU's whole buffer and accept any positive size.
  const bool splits_payload = kind == CollectiveKind::kBroadcast ||
                              kind == CollectiveKind::kReduce ||
                              kind == CollectiveKind::kAllReduce ||
                              kind == CollectiveKind::kReduceScatter;
  if (splits_payload && bytes < num_partitions_) {
    throw std::invalid_argument(
        "collective size must give every partition at least one byte");
  }
  const std::vector<Phase2Strategy> candidates = candidate_strategies(kind);
  if (candidates.empty()) {
    throw std::invalid_argument(
        std::string("phase-2 policy ") + to_string(phase2_) +
        " cannot lower " + to_string(kind) + " on " +
        std::to_string(servers_.size()) +
        " servers (hierarchical reduce exchanges need a power-of-two count)");
  }
  if (candidates.size() == 1) return lower_with(candidates.front(), kind,
                                                bytes, root);
  // The auto bake-off: compile every candidate exchange and keep the one
  // with the shortest simulated makespan — the engine's backend auto-tuner
  // applied to exchange schedules. The plan cache amortizes this to one
  // bake-off per (kind, bytes, root) shape. Candidates lower and measure
  // concurrently across the planner pool; the winner is the first minimum
  // in candidate order, the same tie-break the serial loop applied, so the
  // chosen plan is independent of planner_threads.
  partition_shares();  // warm the once-guarded shares before fanning out
  const std::size_t n = candidates.size();
  std::vector<LoweredCollective> lowered(n);
  std::vector<double> seconds(n, 0.0);
  std::vector<std::exception_ptr> errors(n);
  common::parallel_for(n, planner_threads_, [&](std::size_t i) {
    try {
      lowered[i] = lower_with(candidates[i], kind, bytes, root);
      seconds[i] = sim::execute(fabric_, lowered[i].program).makespan;
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (seconds[i] < seconds[best]) best = i;
  }
  // The winner's identity depends on every candidate's simulated timing: a
  // health event touching a *loser's* channels could flip the bake-off, so
  // the losers' channels join the winner's decision footprint (the engine
  // unions this with the winning program's own channels).
  std::vector<int> footprint;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == best) continue;
    const std::vector<int> channels = sim::program_channels(lowered[i].program);
    footprint.insert(footprint.end(), channels.begin(), channels.end());
  }
  std::sort(footprint.begin(), footprint.end());
  footprint.erase(std::unique(footprint.begin(), footprint.end()),
                  footprint.end());
  lowered[best].footprint = std::move(footprint);
  return std::move(lowered[best]);
}

// --- ClusterCommunicator ----------------------------------------------------

ClusterCommunicator::ClusterCommunicator(std::vector<topo::Topology> servers,
                                         ClusterOptions options)
    : CollectiveEngine(validated_cluster(std::move(servers)), options.fabric,
                       options.engine),
      options_(std::move(options)) {
  auto backend =
      std::make_unique<ClusterBackend>(this->servers(), fabric(), options_);
  cluster_ = backend.get();
  register_backend(std::move(backend));
}

std::vector<double> ClusterCommunicator::partition_shares() {
  // The backend self-synchronizes (once-guarded shares over single-flighted
  // tree-set builds); no engine lock needed.
  return cluster_->partition_shares();
}

double nic_egress_bytes(const sim::Fabric& fabric, const sim::Program& program,
                        int server) {
  if (fabric.num_servers() < 2) return 0.0;
  const int egress =
      fabric.nic_route(server, (server + 1) % fabric.num_servers()).front();
  double total = 0.0;
  for (const sim::Op& op : program.ops()) {
    if (op.kind != sim::OpKind::kCopy) continue;
    for (const int channel : op.route) {
      if (channel == egress) {
        total += op.bytes;
        break;
      }
    }
  }
  return total;
}

}  // namespace blink
