#include "blink/blink/multiserver.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "blink/blink/codegen.h"
#include "blink/sim/executor.h"

namespace blink {

ClusterCommunicator::ClusterCommunicator(std::vector<topo::Topology> servers,
                                         ClusterOptions options)
    : servers_(std::move(servers)),
      options_(std::move(options)),
      fabric_(servers_, options_.fabric),
      plans_(options_.plan_cache_capacity) {
  if (servers_.size() < 2) {
    throw std::invalid_argument("cluster needs at least two servers");
  }
  int min_gpus = servers_[0].num_gpus;
  for (const auto& s : servers_) min_gpus = std::min(min_gpus, s.num_gpus);
  // One partition per server-local root; every server must host a root for
  // every partition (Figure 10 uses one partition per GPU on equal servers).
  num_partitions_ = min_gpus;
}

int ClusterCommunicator::num_gpus() const {
  int total = 0;
  for (int s = 0; s < fabric_.num_servers(); ++s) {
    total += fabric_.server(s).num_gpus;
  }
  return total;
}

const TreeSet& ClusterCommunicator::tree_set(int server, int root) {
  const auto key = std::make_pair(server, root);
  auto it = sets_.find(key);
  if (it == sets_.end()) {
    TreeGenOptions opts = options_.treegen;
    opts.link = topo::LinkType::kNVLink;
    TreeSet set =
        generate_trees(servers_[static_cast<std::size_t>(server)], root, opts);
    if (set.empty()) {
      opts.link = topo::LinkType::kPCIe;
      set = generate_trees(servers_[static_cast<std::size_t>(server)], root,
                           opts);
    }
    it = sets_.emplace(key, std::make_shared<const TreeSet>(std::move(set)))
             .first;
  }
  return *it->second;
}

std::shared_ptr<const CollectivePlan> ClusterCommunicator::compile_all_reduce(
    double bytes) {
  if (!(bytes > 0.0)) {
    throw std::invalid_argument("collective size must be positive");
  }
  const PlanKey key{static_cast<int>(CollectiveKind::kAllReduce), 0,
                    static_cast<std::uint64_t>(bytes)};
  if (auto plan = plans_.find(key)) return plan;

  const int k = num_partitions_;
  const int n_srv = fabric_.num_servers();
  const double partition_bytes = bytes / k;

  ProgramBuilder builder(fabric_, options_.codegen);
  CollectiveResult result;
  result.bytes = bytes;

  std::vector<std::shared_ptr<const TreeSet>> used_sets;
  auto use_set = [&](int server, int root) -> const TreeSet& {
    const TreeSet& set = tree_set(server, root);
    used_sets.push_back(sets_.at(std::make_pair(server, root)));
    return set;
  };

  // Per (partition, server): ops whose completion means "partition reduced
  // at this server's root".
  std::vector<std::vector<std::vector<int>>> phase1_done(
      static_cast<std::size_t>(k),
      std::vector<std::vector<int>>(static_cast<std::size_t>(n_srv)));
  std::vector<std::vector<int>> root_of(static_cast<std::size_t>(k),
                                        std::vector<int>(
                                            static_cast<std::size_t>(n_srv)));

  // ---- Phase 1: per-server local reduce ------------------------------------
  for (int p = 0; p < k; ++p) {
    for (int s = 0; s < n_srv; ++s) {
      const int root = p % fabric_.server(s).num_gpus;
      root_of[static_cast<std::size_t>(p)][static_cast<std::size_t>(s)] = root;
      if (fabric_.server(s).num_gpus == 1) continue;  // nothing to reduce
      const TreeSet& set = use_set(s, root);
      if (set.empty()) {
        throw std::runtime_error("server has no connected fabric");
      }
      const auto trees = route_trees(fabric_, s, set);
      result.num_trees += static_cast<int>(trees.size());
      double total_w = 0.0;
      for (const auto& t : trees) total_w += t.weight;
      for (const auto& tree : trees) {
        const double tree_bytes = partition_bytes * tree.weight / total_w;
        const int chunks = builder.chunks_for(tree_bytes);
        auto done = builder.tree_reduce_chunks(tree, tree_bytes, chunks,
                                               /*with_kernels=*/true);
        auto& sink = phase1_done[static_cast<std::size_t>(p)]
                                [static_cast<std::size_t>(s)];
        sink.insert(sink.end(), done.begin(), done.end());
      }
    }
  }

  // ---- Phase 2: cross-server one-hop reduce-broadcast over NICs ------------
  // Every per-partition root sends its partial to the other servers' roots;
  // each root reduces the n_srv-1 partials it receives with its own.
  std::vector<std::vector<int>> phase2_done(
      static_cast<std::size_t>(k),
      std::vector<int>(static_cast<std::size_t>(n_srv), -1));
  for (int p = 0; p < k; ++p) {
    std::vector<std::vector<int>> arrivals(static_cast<std::size_t>(n_srv));
    for (int src = 0; src < n_srv; ++src) {
      const auto& ready = phase1_done[static_cast<std::size_t>(p)]
                                     [static_cast<std::size_t>(src)];
      for (int dst = 0; dst < n_srv; ++dst) {
        if (dst == src) continue;
        const auto route = fabric_.nic_route(src, dst);
        const int chunks = builder.chunks_for(partition_bytes);
        // The transfer may start only once the whole partition is reduced
        // locally; partitions still pipeline against each other.
        const int join = builder.delay(0.0, "phase1-join", ready);
        const std::vector<int> gates(static_cast<std::size_t>(chunks), join);
        auto done = builder.copy_chunks(route, partition_bytes, chunks,
                                        /*stream_tag=*/p * n_srv + src, gates);
        arrivals[static_cast<std::size_t>(dst)].push_back(done.back());
      }
    }
    for (int s = 0; s < n_srv; ++s) {
      auto deps = arrivals[static_cast<std::size_t>(s)];
      const auto& own = phase1_done[static_cast<std::size_t>(p)]
                                   [static_cast<std::size_t>(s)];
      if (!own.empty()) deps.push_back(own.back());
      const int root =
          root_of[static_cast<std::size_t>(p)][static_cast<std::size_t>(s)];
      phase2_done[static_cast<std::size_t>(p)][static_cast<std::size_t>(s)] =
          builder.reduce_kernel(s, root, partition_bytes * n_srv,
                                std::move(deps));
    }
  }

  // ---- Phase 3: per-server local broadcast ---------------------------------
  for (int p = 0; p < k; ++p) {
    for (int s = 0; s < n_srv; ++s) {
      if (fabric_.server(s).num_gpus == 1) continue;
      const int root =
          root_of[static_cast<std::size_t>(p)][static_cast<std::size_t>(s)];
      const TreeSet& set = use_set(s, root);
      const auto trees = route_trees(fabric_, s, set);
      double total_w = 0.0;
      for (const auto& t : trees) total_w += t.weight;
      const int gate =
          phase2_done[static_cast<std::size_t>(p)][static_cast<std::size_t>(s)];
      for (const auto& tree : trees) {
        const double tree_bytes = partition_bytes * tree.weight / total_w;
        const int chunks = builder.chunks_for(tree_bytes);
        const std::vector<int> gates(static_cast<std::size_t>(chunks), gate);
        builder.tree_broadcast_chunks(tree, tree_bytes, chunks, gates);
      }
    }
  }

  result.num_chunks = builder.chunks_for(partition_bytes);
  sim::Program program = builder.take();
  result.num_ops = static_cast<int>(program.ops().size());
  std::sort(used_sets.begin(), used_sets.end());
  used_sets.erase(std::unique(used_sets.begin(), used_sets.end()),
                  used_sets.end());
  auto plan = std::make_shared<const CollectivePlan>(
      this, CollectiveKind::kAllReduce, bytes, 0, /*backend=*/0,
      options_.codegen.chunk_bytes, std::move(program), result,
      std::move(used_sets));
  plans_.insert(key, plan);
  return plan;
}

CollectiveResult ClusterCommunicator::execute(const CollectivePlan& plan) {
  if (plan.owner() != this) {
    throw std::invalid_argument(
        "plan was compiled by a different communicator");
  }
  if (options_.memoize) {
    if (const auto cached = plan.cached_result()) return *cached;
  }
  CollectiveResult result = plan.meta();
  const auto run = sim::execute(fabric_, plan.program());
  result.seconds = run.makespan;
  result.algorithm_bw = run.throughput(result.bytes);
  if (options_.memoize) plan.memoize_result(result);
  return result;
}

CollectiveResult ClusterCommunicator::all_reduce(double bytes) {
  return execute(*compile_all_reduce(bytes));
}

}  // namespace blink
