#include "blink/blink/multiserver.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "blink/blink/plan_io.h"

namespace blink {

namespace {

template <typename T>
T& at(std::vector<T>& v, int i) {
  return v[static_cast<std::size_t>(i)];
}
template <typename T>
const T& at(const std::vector<T>& v, int i) {
  return v[static_cast<std::size_t>(i)];
}

std::vector<topo::Topology> validated_cluster(
    std::vector<topo::Topology> servers) {
  if (servers.size() < 2) {
    throw std::invalid_argument("cluster needs at least two servers");
  }
  return servers;
}

}  // namespace

// --- ClusterBackend ---------------------------------------------------------

ClusterBackend::ClusterBackend(const std::vector<topo::Topology>& servers,
                               const sim::Fabric& fabric,
                               TreeGenOptions treegen, CodeGenOptions codegen)
    : servers_(servers),
      fabric_(fabric),
      treegen_(treegen),
      codegen_(codegen) {
  int min_gpus = servers_.front().num_gpus;
  for (const auto& s : servers_) min_gpus = std::min(min_gpus, s.num_gpus);
  // One partition per server-local root; every server must host a root for
  // every partition (Figure 10 uses one partition per GPU on equal servers).
  num_partitions_ = min_gpus;
}

bool ClusterBackend::supports(CollectiveKind kind) const {
  (void)kind;  // every kind has a three-phase lowering
  return true;
}

std::uint64_t ClusterBackend::planning_fingerprint() const {
  FingerprintHasher fp;
  hash_options(treegen_, &fp);
  hash_options(codegen_, &fp);
  return fp.value();
}

const ClusterBackend::TreeSetPtr& ClusterBackend::tree_set(int server,
                                                           int root) {
  const auto key = std::make_pair(server, root);
  auto it = sets_.find(key);
  if (it == sets_.end()) {
    TreeGenOptions opts = treegen_;
    opts.link = topo::LinkType::kNVLink;
    TreeSet set =
        generate_trees(servers_[static_cast<std::size_t>(server)], root, opts);
    if (set.empty()) {
      opts.link = topo::LinkType::kPCIe;
      set = generate_trees(servers_[static_cast<std::size_t>(server)], root,
                           opts);
    }
    it = sets_.emplace(key, std::make_shared<const TreeSet>(std::move(set)))
             .first;
  }
  return it->second;
}

// One lowering's emission state: the builder, result bookkeeping, and the
// phase emitters every kind composes. Partition p's server-local root is
// root_of(p, s); since num_partitions_ is the smallest server size, every
// server hosts every partition root.
struct ClusterBackend::Emit {
  ClusterBackend& be;
  ProgramBuilder builder;
  CollectiveResult meta;
  std::vector<TreeSetPtr> used;
  const int k;      // data partitions
  const int n_srv;  // servers
  int tag = 0;      // fresh stream per point-to-point transfer

  explicit Emit(ClusterBackend& backend)
      : be(backend),
        builder(backend.fabric_, backend.codegen_),
        k(backend.num_partitions_),
        n_srv(static_cast<int>(backend.servers_.size())) {}

  int gpus(int s) const {
    return at(be.servers_, s).num_gpus;
  }
  int total_gpus() const {
    int n = 0;
    for (int s = 0; s < n_srv; ++s) n += gpus(s);
    return n;
  }
  int root_of(int p, int s) const { return p % gpus(s); }
  // Splits a global server-major GPU id into (server, local id).
  std::pair<int, int> locate(int global) const {
    int s = 0;
    while (global >= gpus(s)) global -= gpus(s++);
    return {s, global};
  }
  int global_of(int s, int local) const {
    int base = 0;
    for (int i = 0; i < s; ++i) base += gpus(i);
    return base + local;
  }

  const TreeSet& use_set(int s, int root) {
    const TreeSetPtr& set = be.tree_set(s, root);
    used.push_back(set);
    return *set;
  }

  std::vector<int> local_route(int s, int src, int dst) const {
    return be.fabric_.nvlink_adjacent(s, src, dst)
               ? be.fabric_.nvlink_route(s, src, dst)
               : be.fabric_.pcie_route(s, src, dst);
  }

  int join(std::vector<int> deps, const char* label) {
    return builder.delay(0.0, label, std::move(deps));
  }

  // Chunked reduce of |bytes| to local |root| over the server's packed
  // trees; the returned ops complete when the buffer is reduced at the root.
  std::vector<int> tree_reduce(int s, int root, double bytes) {
    std::vector<int> done;
    if (gpus(s) == 1) return done;  // nothing to reduce
    const TreeSet& set = use_set(s, root);
    if (set.empty()) {
      throw std::runtime_error("server has no connected fabric");
    }
    const auto trees = route_trees(be.fabric_, s, set);
    meta.num_trees += static_cast<int>(trees.size());
    double total_w = 0.0;
    for (const auto& t : trees) total_w += t.weight;
    for (const auto& tree : trees) {
      const double tree_bytes = bytes * tree.weight / total_w;
      const int chunks = builder.chunks_for(tree_bytes);
      const auto ops = builder.tree_reduce_chunks(tree, tree_bytes, chunks,
                                                  /*with_kernels=*/true);
      done.insert(done.end(), ops.begin(), ops.end());
    }
    return done;
  }

  // Chunked broadcast of |bytes| from local |root| over the packed trees,
  // every chunk gated on |gate| (-1: ungated).
  void tree_broadcast(int s, int root, double bytes, int gate) {
    if (gpus(s) == 1) return;
    const TreeSet& set = use_set(s, root);
    if (set.empty()) {
      throw std::runtime_error("server has no connected fabric");
    }
    const auto trees = route_trees(be.fabric_, s, set);
    meta.num_trees += static_cast<int>(trees.size());
    double total_w = 0.0;
    for (const auto& t : trees) total_w += t.weight;
    for (const auto& tree : trees) {
      const double tree_bytes = bytes * tree.weight / total_w;
      const int chunks = builder.chunks_for(tree_bytes);
      const std::vector<int> gates(static_cast<std::size_t>(chunks), gate);
      builder.tree_broadcast_chunks(tree, tree_bytes, chunks, gates);
    }
  }

  int copy(const std::vector<int>& route, double bytes, int gate) {
    const int chunks = builder.chunks_for(bytes);
    const std::vector<int> gates(static_cast<std::size_t>(chunks), gate);
    return builder.copy_chunks(route, bytes, chunks, tag++, gates).back();
  }
  // Chunked point-to-point copy within server |s| (gather/scatter phases).
  int local_copy(int s, int src, int dst, double bytes, int gate) {
    return copy(local_route(s, src, dst), bytes, gate);
  }
  // Chunked one-hop copy over the NICs.
  int nic_copy(int src_srv, int dst_srv, double bytes, int gate) {
    return copy(be.fabric_.nic_route(src_srv, dst_srv), bytes, gate);
  }

  // Phases 1+2 shared by AllReduce and ReduceScatter: per-server tree reduce
  // of every partition, then the all-to-all exchange over the NICs with a
  // reduction at each server's partition root. Returns op [p][s] whose
  // completion means "partition p fully reduced at root_of(p, s)".
  std::vector<std::vector<int>> reduce_exchange(double part_bytes) {
    std::vector<std::vector<std::vector<int>>> phase1(
        static_cast<std::size_t>(k),
        std::vector<std::vector<int>>(static_cast<std::size_t>(n_srv)));
    for (int p = 0; p < k; ++p) {
      for (int s = 0; s < n_srv; ++s) {
        at(at(phase1, p), s) = tree_reduce(s, root_of(p, s), part_bytes);
      }
    }
    std::vector<std::vector<int>> reduced(
        static_cast<std::size_t>(k),
        std::vector<int>(static_cast<std::size_t>(n_srv), -1));
    for (int p = 0; p < k; ++p) {
      std::vector<std::vector<int>> arrivals(static_cast<std::size_t>(n_srv));
      for (int src = 0; src < n_srv; ++src) {
        // The transfer may start only once the whole partition is reduced
        // locally; partitions still pipeline against each other.
        const int gate = join(at(at(phase1, p), src), "phase1-join");
        for (int dst = 0; dst < n_srv; ++dst) {
          if (dst == src) continue;
          at(arrivals, dst).push_back(nic_copy(src, dst, part_bytes, gate));
        }
      }
      for (int s = 0; s < n_srv; ++s) {
        // The kernel needs every local tree's reduction, not just the last
        // emitted one: the trees run on independent streams.
        auto deps = at(arrivals, s);
        const auto& own = at(at(phase1, p), s);
        deps.insert(deps.end(), own.begin(), own.end());
        at(at(reduced, p), s) = builder.reduce_kernel(
            s, root_of(p, s), part_bytes * n_srv, std::move(deps));
      }
    }
    return reduced;
  }

  // Phase 1 shared by AllGather and Gather: each local GPU g (contributing
  // to partition g % k) copies its buffer to the partition's local root.
  // Fills |count| (GPUs per partition per server) and returns the copy ops
  // per (p, s).
  std::vector<std::vector<std::vector<int>>> gather_to_roots(
      double bytes, std::vector<std::vector<int>>* count) {
    count->assign(static_cast<std::size_t>(k),
                  std::vector<int>(static_cast<std::size_t>(n_srv), 0));
    std::vector<std::vector<std::vector<int>>> gathered(
        static_cast<std::size_t>(k),
        std::vector<std::vector<int>>(static_cast<std::size_t>(n_srv)));
    for (int s = 0; s < n_srv; ++s) {
      for (int g = 0; g < gpus(s); ++g) {
        const int p = g % k;
        ++at(at(*count, p), s);
        if (g != root_of(p, s)) {
          at(at(gathered, p), s)
              .push_back(local_copy(s, g, root_of(p, s), bytes, -1));
        }
      }
    }
    return gathered;
  }

  // --- the six kinds --------------------------------------------------------

  void all_reduce(double bytes) {
    const double part_bytes = bytes / k;
    const auto reduced = reduce_exchange(part_bytes);
    for (int p = 0; p < k; ++p) {
      for (int s = 0; s < n_srv; ++s) {
        tree_broadcast(s, root_of(p, s), part_bytes, at(at(reduced, p), s));
      }
    }
  }

  void reduce_scatter(double bytes) {
    const auto reduced = reduce_exchange(bytes / k);
    // Each GPU's output shard lives in the partition its global rank maps
    // to; one copy from that partition's local root delivers it.
    const double shard = bytes / total_gpus();
    for (int s = 0; s < n_srv; ++s) {
      for (int g = 0; g < gpus(s); ++g) {
        const int p = global_of(s, g) % k;
        const int src = root_of(p, s);
        if (src != g) local_copy(s, src, g, shard, at(at(reduced, p), s));
      }
    }
  }

  void broadcast(double bytes, int root) {
    const auto [sr, lr] = locate(root);
    const double part_bytes = bytes / k;
    // No phase 1: the buffer is resident at the root. Phase 2 fans each
    // partition out to the other servers' partition roots; phase 3
    // broadcasts locally over every server's packed trees.
    tree_broadcast(sr, lr, bytes, -1);
    for (int s = 0; s < n_srv; ++s) {
      if (s == sr) continue;
      for (int p = 0; p < k; ++p) {
        const int arrival = nic_copy(sr, s, part_bytes, -1);
        tree_broadcast(s, root_of(p, s), part_bytes, arrival);
      }
    }
  }

  void reduce(double bytes, int root) {
    const auto [sr, lr] = locate(root);
    const double part_bytes = bytes / k;
    std::vector<std::vector<std::vector<int>>> phase1(
        static_cast<std::size_t>(k),
        std::vector<std::vector<int>>(static_cast<std::size_t>(n_srv)));
    for (int p = 0; p < k; ++p) {
      for (int s = 0; s < n_srv; ++s) {
        at(at(phase1, p), s) = tree_reduce(s, root_of(p, s), part_bytes);
      }
    }
    // Phase 2 converges on the root server instead of going all-to-all.
    for (int p = 0; p < k; ++p) {
      std::vector<int> deps;
      for (int s = 0; s < n_srv; ++s) {
        if (s == sr) continue;
        const int gate = join(at(at(phase1, p), s), "phase1-join");
        deps.push_back(nic_copy(s, sr, part_bytes, gate));
      }
      const auto& own = at(at(phase1, p), sr);
      deps.insert(deps.end(), own.begin(), own.end());
      const int kernel = builder.reduce_kernel(
          sr, root_of(p, sr), part_bytes * n_srv, std::move(deps));
      // Phase 3: the reduced partitions converge on the root GPU.
      if (root_of(p, sr) != lr) {
        local_copy(sr, root_of(p, sr), lr, part_bytes, kernel);
      }
    }
  }

  void all_gather(double bytes) {
    std::vector<std::vector<int>> count;
    const auto gathered = gather_to_roots(bytes, &count);
    std::vector<int> cluster_count(static_cast<std::size_t>(k), 0);
    for (int p = 0; p < k; ++p) {
      for (int s = 0; s < n_srv; ++s) at(cluster_count, p) += at(at(count, p), s);
    }
    // Phase 2: all-to-all of each server's per-partition block.
    std::vector<std::vector<std::vector<int>>> arrivals(
        static_cast<std::size_t>(k),
        std::vector<std::vector<int>>(static_cast<std::size_t>(n_srv)));
    for (int p = 0; p < k; ++p) {
      for (int src = 0; src < n_srv; ++src) {
        const int gate = join(at(at(gathered, p), src), "gather-join");
        const double block = at(at(count, p), src) * bytes;
        for (int dst = 0; dst < n_srv; ++dst) {
          if (dst == src) continue;
          at(at(arrivals, p), dst).push_back(nic_copy(src, dst, block, gate));
        }
      }
    }
    // Phase 3: broadcast each cluster-wide partition block locally (on a
    // single-GPU server the blocks already landed at the only GPU).
    for (int s = 0; s < n_srv; ++s) {
      if (gpus(s) == 1) continue;
      for (int p = 0; p < k; ++p) {
        // Wait on every local copy into the partition root — they run on
        // independent streams — plus every NIC arrival.
        auto deps = at(at(arrivals, p), s);
        const auto& own = at(at(gathered, p), s);
        deps.insert(deps.end(), own.begin(), own.end());
        const int gate = join(std::move(deps), "exchange-join");
        tree_broadcast(s, root_of(p, s), at(cluster_count, p) * bytes, gate);
      }
    }
  }

  void gather(double bytes, int root) {
    const auto [sr, lr] = locate(root);
    std::vector<std::vector<int>> count;
    const auto gathered = gather_to_roots(bytes, &count);
    // Phase 2: blocks converge on the root server's partition roots.
    std::vector<std::vector<int>> arrivals(static_cast<std::size_t>(k));
    for (int p = 0; p < k; ++p) {
      for (int s = 0; s < n_srv; ++s) {
        if (s == sr) continue;
        const int gate = join(at(at(gathered, p), s), "gather-join");
        at(arrivals, p)
            .push_back(nic_copy(s, sr, at(at(count, p), s) * bytes, gate));
      }
    }
    // Phase 3: the root GPU collects every partition's cluster-wide block.
    for (int p = 0; p < k; ++p) {
      if (root_of(p, sr) == lr) continue;
      double block = 0.0;
      for (int s = 0; s < n_srv; ++s) block += at(at(count, p), s) * bytes;
      auto deps = at(arrivals, p);
      const auto& own = at(at(gathered, p), sr);
      deps.insert(deps.end(), own.begin(), own.end());
      const int gate = join(std::move(deps), "exchange-join");
      local_copy(sr, root_of(p, sr), lr, block, gate);
    }
  }
};

LoweredCollective ClusterBackend::lower(CollectiveKind kind, double bytes,
                                        int root) {
  // The engine validated bytes > 0 and the global root range. Kinds that
  // split the payload across partitions additionally need every partition
  // to carry at least one byte (sizes that do not divide evenly are split
  // fractionally, never truncated); Gather/AllGather move each GPU's whole
  // buffer and accept any positive size.
  const bool splits_payload = kind == CollectiveKind::kBroadcast ||
                              kind == CollectiveKind::kReduce ||
                              kind == CollectiveKind::kAllReduce ||
                              kind == CollectiveKind::kReduceScatter;
  if (splits_payload && bytes < num_partitions_) {
    throw std::invalid_argument(
        "collective size must give every partition at least one byte");
  }
  Emit e(*this);
  switch (kind) {
    case CollectiveKind::kBroadcast:
      e.broadcast(bytes, root);
      break;
    case CollectiveKind::kGather:
      e.gather(bytes, root);
      break;
    case CollectiveKind::kReduce:
      e.reduce(bytes, root);
      break;
    case CollectiveKind::kAllReduce:
      e.all_reduce(bytes);
      break;
    case CollectiveKind::kAllGather:
      e.all_gather(bytes);
      break;
    case CollectiveKind::kReduceScatter:
      e.reduce_scatter(bytes);
      break;
  }
  LoweredCollective lowered;
  lowered.chunk_bytes = codegen_.chunk_bytes;
  lowered.meta = e.meta;
  lowered.meta.bytes = bytes;
  lowered.meta.num_chunks = e.builder.chunks_for(bytes / num_partitions_);
  lowered.program = e.builder.take();
  lowered.meta.num_ops = static_cast<int>(lowered.program.ops().size());
  std::sort(e.used.begin(), e.used.end());
  e.used.erase(std::unique(e.used.begin(), e.used.end()), e.used.end());
  lowered.tree_sets = std::move(e.used);
  return lowered;
}

// --- ClusterCommunicator ----------------------------------------------------

ClusterCommunicator::ClusterCommunicator(std::vector<topo::Topology> servers,
                                         ClusterOptions options)
    : CollectiveEngine(validated_cluster(std::move(servers)), options.fabric,
                       options.engine),
      options_(std::move(options)) {
  auto backend = std::make_unique<ClusterBackend>(
      this->servers(), fabric(), options_.treegen, options_.codegen);
  cluster_ = backend.get();
  register_backend(std::move(backend));
}

}  // namespace blink
