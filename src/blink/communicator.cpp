#include "blink/blink/communicator.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "blink/blink/dgx2.h"
#include "blink/blink/hybrid.h"

namespace blink {

const char* to_string(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kBroadcast:
      return "Broadcast";
    case CollectiveKind::kGather:
      return "Gather";
    case CollectiveKind::kReduce:
      return "Reduce";
    case CollectiveKind::kAllReduce:
      return "AllReduce";
    case CollectiveKind::kAllGather:
      return "AllGather";
    case CollectiveKind::kReduceScatter:
      return "ReduceScatter";
  }
  return "?";
}

Communicator::Communicator(topo::Topology topo, CommunicatorOptions options)
    : topo_(std::move(topo)),
      options_(std::move(options)),
      fabric_(topo_, options_.fabric) {
  std::string err;
  if (!topo_.validate(&err)) {
    throw std::invalid_argument("invalid topology: " + err);
  }
  nvlink_sets_.resize(static_cast<std::size_t>(topo_.num_gpus));
  bidir_sets_.resize(static_cast<std::size_t>(topo_.num_gpus));
  pcie_sets_.resize(static_cast<std::size_t>(topo_.num_gpus));
}

const TreeSet& Communicator::tree_set(int root) {
  assert(root >= 0 && root < topo_.num_gpus);
  auto& slot = nvlink_sets_[static_cast<std::size_t>(root)];
  if (!slot.has_value()) {
    TreeGenOptions opts = options_.treegen;
    opts.link = topo::LinkType::kNVLink;
    slot = generate_trees(topo_, root, opts);
    if (slot->empty()) {
      // NVLink does not connect this allocation: Blink falls back to PCIe
      // trees entirely (the situation where NCCL collapses, Figure 2b).
      *slot = pcie_tree_set(root);
    }
  }
  return *slot;
}

const TreeSet& Communicator::bidir_tree_set(int root) {
  assert(root >= 0 && root < topo_.num_gpus);
  auto& slot = bidir_sets_[static_cast<std::size_t>(root)];
  if (!slot.has_value()) {
    TreeGenOptions opts = options_.treegen;
    opts.link = topo::LinkType::kNVLink;
    opts.bidirectional = true;
    slot = generate_trees(topo_, root, opts);
    if (slot->empty()) *slot = pcie_tree_set(root);
  }
  return *slot;
}

const TreeSet& Communicator::pcie_tree_set(int root) {
  assert(root >= 0 && root < topo_.num_gpus);
  auto& slot = pcie_sets_[static_cast<std::size_t>(root)];
  if (!slot.has_value()) {
    TreeGenOptions opts = options_.treegen;
    opts.link = topo::LinkType::kPCIe;
    slot = generate_trees(topo_, root, opts);
  }
  return *slot;
}

int Communicator::best_root() {
  if (!best_root_.has_value()) {
    int best = 0;
    double best_rate = -1.0;
    for (int r = 0; r < topo_.num_gpus; ++r) {
      const double rate = tree_set(r).rate;
      if (rate > best_rate) {
        best_rate = rate;
        best = r;
      }
    }
    best_root_ = best;
  }
  return *best_root_;
}

double Communicator::dpa_latency() const {
  return options_.dpa_base_latency +
         options_.dpa_per_gpu_latency * topo_.num_gpus;
}

std::uint64_t Communicator::effective_chunk(CollectiveKind kind, double bytes,
                                            int root) {
  if (options_.codegen.chunk_bytes != 0) return options_.codegen.chunk_bytes;
  const auto key = std::make_tuple(static_cast<int>(kind), root,
                                   static_cast<std::uint64_t>(bytes));
  const auto it = tuned_chunks_.find(key);
  if (it != tuned_chunks_.end()) return it->second;
  const MiadResult tuned = tune_chunk_size(kind, bytes, root);
  return tuned.selected_chunk;
}

MiadResult Communicator::tune_chunk_size(CollectiveKind kind, double bytes,
                                         int root, const MiadOptions& miad) {
  if (root < 0) root = 0;
  MiadResult result = blink::tune_chunk_size(
      [&](std::uint64_t chunk) {
        const CollectiveResult r = execute(kind, bytes, root, chunk);
        return r.algorithm_bw;
      },
      miad);
  const auto key = std::make_tuple(static_cast<int>(kind), root,
                                   static_cast<std::uint64_t>(bytes));
  tuned_chunks_[key] = result.selected_chunk;
  return result;
}

double Communicator::measured_rate(const TreeSet& set, double probe_bytes) {
  const auto key =
      std::make_pair(&set, static_cast<std::uint64_t>(probe_bytes));
  const auto it = measured_rates_.find(key);
  if (it != measured_rates_.end()) return it->second;
  ProgramBuilder builder(fabric_, options_.codegen.chunk_bytes != 0
                                      ? options_.codegen
                                      : CodeGenOptions{});
  builder.broadcast(route_trees(fabric_, 0, set), probe_bytes);
  const auto run = sim::execute(fabric_, builder.take());
  const double rate = run.throughput(probe_bytes);
  measured_rates_[key] = rate;
  return rate;
}

sim::Program Communicator::build_program(CollectiveKind kind, double bytes,
                                         int root, std::uint64_t chunk_bytes,
                                         CollectiveResult* meta) {
  CodeGenOptions cg = options_.codegen;
  cg.chunk_bytes = chunk_bytes;
  ProgramBuilder builder(fabric_, cg);

  std::vector<RoutedTree> trees;
  if (topo_.has_nvswitch) {
    switch (kind) {
      case CollectiveKind::kBroadcast:
        trees = topo_.num_gpus > 2 ? dgx2_broadcast_trees(fabric_, 0, root)
                                   : dgx2_one_hop_trees(fabric_, 0);
        break;
      default:
        trees = dgx2_one_hop_trees(fabric_, 0);
        break;
    }
  } else {
    const bool many_to_many = kind == CollectiveKind::kAllReduce ||
                              kind == CollectiveKind::kAllGather;
    trees = route_trees(fabric_, 0,
                        many_to_many ? bidir_tree_set(root) : tree_set(root));
  }
  if (trees.empty()) {
    throw std::runtime_error("no spanning trees connect this allocation");
  }
  meta->num_trees = static_cast<int>(trees.size());

  switch (kind) {
    case CollectiveKind::kBroadcast: {
      if (options_.hybrid && !topo_.has_nvswitch) {
        const TreeSet& pcie = pcie_tree_set(root);
        const TreeSet& nvl = tree_set(root);
        if (!pcie.empty() && nvl.link == topo::LinkType::kNVLink) {
          // Equation 8 with *measured* rates: the first calls into the
          // library probe both fabrics, like the paper's empirical T_dpa.
          // Probe the NVLink fabric at the request size (fill fraction
          // matters) and PCIe at a fixed size (its rate is stable).
          const double nvl_rate = measured_rate(nvl, bytes);
          const double pcie_rate = measured_rate(pcie, 256e6);
          auto split =
              compute_hybrid_split(bytes, nvl_rate, pcie_rate, dpa_latency());
          // Never regress: cap the PCIe share so that even against the
          // un-split NVLink completion time, the PCIe side (plus the
          // peer-access toggle) finishes first. Equation 8's equalization
          // assumes exact rates; measured rates carry chunk-granularity
          // noise, so we keep a safety margin.
          const double cap =
              0.95 * pcie_rate * std::max(0.0, bytes / nvl_rate - dpa_latency());
          split.pcie_bytes = std::min(split.pcie_bytes, cap);
          split.nvlink_bytes = bytes - split.pcie_bytes;
          // Only switch fabrics when PCIe carries a meaningful share;
          // otherwise the peer-access toggle is pure overhead.
          if (split.pcie_bytes > std::max(0.005 * bytes, 48e6)) {
            builder.broadcast(trees, split.nvlink_bytes);
            const int dpa = builder.delay(dpa_latency(), "disable_peer_access");
            const auto pcie_trees = route_trees(fabric_, 0, pcie);
            meta->num_trees += static_cast<int>(pcie_trees.size());
            for (const auto& tree : pcie_trees) {
              const double tree_bytes =
                  split.pcie_bytes * tree.weight / [&] {
                    double t = 0.0;
                    for (const auto& pt : pcie_trees) t += pt.weight;
                    return t;
                  }();
              const int chunks = builder.chunks_for(tree_bytes);
              const std::vector<int> gates(static_cast<std::size_t>(chunks),
                                           dpa);
              builder.tree_broadcast_chunks(tree, tree_bytes, chunks, gates);
            }
            break;
          }
        }
        builder.broadcast(trees, bytes);
        break;
      }
      builder.broadcast(trees, bytes);
      break;
    }
    case CollectiveKind::kGather:
      builder.gather(trees, bytes);
      break;
    case CollectiveKind::kReduce:
      builder.reduce(trees, bytes);
      break;
    case CollectiveKind::kAllReduce:
      builder.all_reduce(trees, bytes);
      break;
    case CollectiveKind::kAllGather:
      builder.all_gather(trees, bytes);
      break;
    case CollectiveKind::kReduceScatter: {
      // One shard per GPU, reduced to its owner; all shards run in one
      // schedule and share the fabric.
      const double shard = bytes / topo_.num_gpus;
      if (topo_.has_nvswitch) {
        builder.reduce(trees, bytes);  // one-hop trees already shard by root
      } else {
        for (int r = 0; r < topo_.num_gpus; ++r) {
          const auto shard_trees = route_trees(fabric_, 0, tree_set(r));
          if (!shard_trees.empty()) builder.reduce(shard_trees, shard);
        }
      }
      break;
    }
  }

  double heaviest = 0.0;
  double total = 0.0;
  for (const auto& t : trees) total += t.weight;
  for (const auto& t : trees) heaviest = std::max(heaviest, t.weight);
  meta->num_chunks = builder.chunks_for(bytes * heaviest / total);
  return builder.take();
}

CollectiveResult Communicator::execute(CollectiveKind kind, double bytes,
                                       int root, std::uint64_t chunk_bytes) {
  CollectiveResult result;
  result.bytes = bytes;
  const sim::Program program =
      build_program(kind, bytes, root, chunk_bytes, &result);
  result.num_ops = static_cast<int>(program.ops().size());
  const sim::RunResult run = sim::execute(fabric_, program);
  result.seconds = run.makespan;
  result.algorithm_bw = run.throughput(bytes);
  return result;
}

CollectiveResult Communicator::run_collective(CollectiveKind kind,
                                              double bytes, int root) {
  const auto key = std::make_tuple(static_cast<int>(kind), root,
                                   static_cast<std::uint64_t>(bytes));
  if (options_.memoize) {
    const auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
  }
  const std::uint64_t chunk = effective_chunk(kind, bytes, root);
  CollectiveResult result = execute(kind, bytes, root, chunk);
  if (options_.memoize) memo_[key] = result;
  return result;
}

CollectiveResult Communicator::broadcast(double bytes, int root) {
  return run_collective(CollectiveKind::kBroadcast, bytes, root);
}
CollectiveResult Communicator::gather(double bytes, int root) {
  return run_collective(CollectiveKind::kGather, bytes, root);
}
CollectiveResult Communicator::reduce(double bytes, int root) {
  return run_collective(CollectiveKind::kReduce, bytes, root);
}
CollectiveResult Communicator::all_reduce(double bytes) {
  return run_collective(CollectiveKind::kAllReduce, bytes,
                        topo_.has_nvswitch ? 0 : best_root());
}
CollectiveResult Communicator::all_gather(double bytes) {
  return run_collective(CollectiveKind::kAllGather, bytes,
                        topo_.has_nvswitch ? 0 : best_root());
}
CollectiveResult Communicator::reduce_scatter(double bytes) {
  return run_collective(CollectiveKind::kReduceScatter, bytes, 0);
}

}  // namespace blink
