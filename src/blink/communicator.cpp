#include "blink/blink/communicator.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "blink/blink/dgx2.h"
#include "blink/blink/hybrid.h"
#include "blink/blink/plan_io.h"
#include "blink/common/thread_pool.h"
#include "blink/sim/executor.h"

namespace blink {

// --- BlinkBackend -----------------------------------------------------------

BlinkBackend::BlinkBackend(const topo::Topology& topo,
                           const sim::Fabric& fabric,
                           CommunicatorOptions options)
    : topo_(topo),
      fabric_(fabric),
      options_(std::move(options)),
      planning_topo_(topo) {
  planner_threads_ =
      options_.planner_threads >= 1
          ? static_cast<std::size_t>(options_.planner_threads)
          : common::ThreadPool::default_threads();
  // TreeGen fans out its internal searches (optimal-rate max-flows, prune
  // candidates) at the same width; not fingerprinted, never changes trees.
  options_.treegen.max_workers = static_cast<int>(planner_threads_);
  const auto n = static_cast<std::size_t>(topo_.num_gpus);
  nvlink_sets_.resize(n);
  bidir_sets_.resize(n);
  pcie_sets_.resize(n);
  nvlink_once_ = std::make_unique<std::once_flag[]>(n);
  bidir_once_ = std::make_unique<std::once_flag[]>(n);
  pcie_once_ = std::make_unique<std::once_flag[]>(n);
  best_root_once_ = std::make_unique<std::once_flag>();
}

HealthNotice BlinkBackend::on_health_event(
    const sim::HealthEvent& event, std::span<const int> affected_channels) {
  (void)event;
  (void)affected_channels;
  // Runs under the owning engine's repair quiesce: no lower(), probe, or
  // best_root() is in flight, so the lazy slots can be re-armed wholesale.
  planning_topo_ = fabric_.healthy_topology(0);
  const auto n = static_cast<std::size_t>(topo_.num_gpus);
  std::fill(nvlink_sets_.begin(), nvlink_sets_.end(), nullptr);
  std::fill(bidir_sets_.begin(), bidir_sets_.end(), nullptr);
  std::fill(pcie_sets_.begin(), pcie_sets_.end(), nullptr);
  nvlink_once_ = std::make_unique<std::once_flag[]>(n);
  bidir_once_ = std::make_unique<std::once_flag[]>(n);
  pcie_once_ = std::make_unique<std::once_flag[]>(n);
  best_root_once_ = std::make_unique<std::once_flag>();
  best_root_.reset();
  {
    const std::lock_guard<std::mutex> lock(rates_mu_);
    measured_rates_.clear();
  }
  HealthNotice notice;
  notice.all_stale = true;
  return notice;
}

bool BlinkBackend::supports(CollectiveKind kind) const {
  (void)kind;
  return true;  // Blink lowers every collective on every topology.
}

const BlinkBackend::TreeSetPtr& BlinkBackend::shared_tree_set(int root) {
  assert(root >= 0 && root < topo_.num_gpus);
  const auto slot_index = static_cast<std::size_t>(root);
  auto& slot = nvlink_sets_[slot_index];
  std::call_once(nvlink_once_[slot_index], [&] {
    TreeGenOptions opts = options_.treegen;
    opts.link = topo::LinkType::kNVLink;
    TreeSet set = generate_trees(planning_topo_, root, opts);
    if (set.empty()) {
      // NVLink does not connect this allocation: Blink falls back to PCIe
      // trees entirely (the situation where NCCL collapses, Figure 2b).
      slot = shared_pcie_tree_set(root);
    } else {
      slot = std::make_shared<const TreeSet>(std::move(set));
    }
  });
  return slot;
}

const BlinkBackend::TreeSetPtr& BlinkBackend::shared_bidir_tree_set(int root) {
  assert(root >= 0 && root < topo_.num_gpus);
  const auto slot_index = static_cast<std::size_t>(root);
  auto& slot = bidir_sets_[slot_index];
  std::call_once(bidir_once_[slot_index], [&] {
    TreeGenOptions opts = options_.treegen;
    opts.link = topo::LinkType::kNVLink;
    opts.bidirectional = true;
    TreeSet set = generate_trees(planning_topo_, root, opts);
    if (set.empty()) {
      slot = shared_pcie_tree_set(root);
    } else {
      slot = std::make_shared<const TreeSet>(std::move(set));
    }
  });
  return slot;
}

const BlinkBackend::TreeSetPtr& BlinkBackend::shared_pcie_tree_set(int root) {
  assert(root >= 0 && root < topo_.num_gpus);
  const auto slot_index = static_cast<std::size_t>(root);
  auto& slot = pcie_sets_[slot_index];
  std::call_once(pcie_once_[slot_index], [&] {
    TreeGenOptions opts = options_.treegen;
    opts.link = topo::LinkType::kPCIe;
    slot = std::make_shared<const TreeSet>(
        generate_trees(planning_topo_, root, opts));
  });
  return slot;
}

int BlinkBackend::best_root() {
  std::call_once(*best_root_once_, [&] {
    // The first AllReduce on a non-NVSwitch box pays for TreeGen at every
    // root; generating the per-root sets across the planner pool turns the
    // worst cold-start into the cost of the slowest single root.
    const auto n = static_cast<std::size_t>(topo_.num_gpus);
    std::vector<double> rates(n, -1.0);
    common::parallel_for(n, planner_threads_, [&](std::size_t r) {
      rates[r] = shared_tree_set(static_cast<int>(r))->rate;
    });
    int best = 0;
    double best_rate = -1.0;
    for (std::size_t r = 0; r < n; ++r) {
      if (rates[r] > best_rate) {
        best_rate = rates[r];
        best = static_cast<int>(r);
      }
    }
    best_root_ = best;
  });
  return *best_root_;
}

int BlinkBackend::default_root(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kAllReduce:
    case CollectiveKind::kAllGather:
      return topo_.has_nvswitch ? 0 : best_root();
    default:
      return 0;
  }
}

double BlinkBackend::dpa_latency() const {
  return options_.dpa_base_latency +
         options_.dpa_per_gpu_latency * topo_.num_gpus;
}

double BlinkBackend::measured_rate(const TreeSet& set, double probe_bytes) {
  const auto key =
      std::make_tuple(static_cast<int>(set.link), set.bidirectional, set.root,
                      static_cast<std::uint64_t>(probe_bytes));
  {
    const std::lock_guard<std::mutex> lock(rates_mu_);
    const auto it = measured_rates_.find(key);
    if (it != measured_rates_.end()) return it->second;
  }
  // Probe outside the lock: concurrent duplicates simulate the same program
  // and land on the same deterministic value; the first insert wins.
  ProgramBuilder builder(fabric_, options_.codegen.chunk_bytes != 0
                                      ? options_.codegen
                                      : CodeGenOptions{});
  builder.broadcast(route_trees(fabric_, 0, set), probe_bytes);
  const auto run = sim::execute(fabric_, builder.take());
  const double rate = run.throughput(probe_bytes);
  const std::lock_guard<std::mutex> lock(rates_mu_);
  return measured_rates_.emplace(key, rate).first->second;
}

sim::Program BlinkBackend::build_program(CollectiveKind kind, double bytes,
                                         int root, std::uint64_t chunk_bytes,
                                         CollectiveResult* meta,
                                         std::vector<TreeSetPtr>* used_sets) {
  CodeGenOptions cg = options_.codegen;
  cg.chunk_bytes = chunk_bytes;
  ProgramBuilder builder(fabric_, cg);

  auto use = [&](const TreeSetPtr& set) -> const TreeSet& {
    if (used_sets != nullptr) used_sets->push_back(set);
    return *set;
  };

  std::vector<RoutedTree> trees;
  if (topo_.has_nvswitch) {
    switch (kind) {
      case CollectiveKind::kBroadcast:
        trees = topo_.num_gpus > 2 ? dgx2_broadcast_trees(fabric_, 0, root)
                                   : dgx2_one_hop_trees(fabric_, 0);
        break;
      default:
        trees = dgx2_one_hop_trees(fabric_, 0);
        break;
    }
  } else {
    const bool many_to_many = kind == CollectiveKind::kAllReduce ||
                              kind == CollectiveKind::kAllGather;
    trees = route_trees(fabric_, 0,
                        many_to_many ? use(shared_bidir_tree_set(root))
                                     : use(shared_tree_set(root)));
  }
  if (trees.empty()) {
    throw std::runtime_error("no spanning trees connect this allocation");
  }
  meta->num_trees = static_cast<int>(trees.size());

  switch (kind) {
    case CollectiveKind::kBroadcast: {
      if (options_.hybrid && !topo_.has_nvswitch) {
        const TreeSet& pcie = *shared_pcie_tree_set(root);
        const TreeSet& nvl = *shared_tree_set(root);
        if (!pcie.empty() && nvl.link == topo::LinkType::kNVLink) {
          use(shared_pcie_tree_set(root));
          // Equation 8 with *measured* rates: the first calls into the
          // library probe both fabrics, like the paper's empirical T_dpa.
          // Probe the NVLink fabric at the request size (fill fraction
          // matters) and PCIe at a fixed size (its rate is stable).
          const double nvl_rate = measured_rate(nvl, bytes);
          const double pcie_rate = measured_rate(pcie, 256e6);
          auto split =
              compute_hybrid_split(bytes, nvl_rate, pcie_rate, dpa_latency());
          // Never regress: cap the PCIe share so that even against the
          // un-split NVLink completion time, the PCIe side (plus the
          // peer-access toggle) finishes first. Equation 8's equalization
          // assumes exact rates; measured rates carry chunk-granularity
          // noise, so we keep a safety margin.
          const double cap =
              0.95 * pcie_rate * std::max(0.0, bytes / nvl_rate - dpa_latency());
          split.pcie_bytes = std::min(split.pcie_bytes, cap);
          split.nvlink_bytes = bytes - split.pcie_bytes;
          // Only switch fabrics when PCIe carries a meaningful share;
          // otherwise the peer-access toggle is pure overhead.
          if (split.pcie_bytes > std::max(0.005 * bytes, 48e6)) {
            builder.broadcast(trees, split.nvlink_bytes);
            const int dpa = builder.delay(dpa_latency(), "disable_peer_access");
            const auto pcie_trees = route_trees(fabric_, 0, pcie);
            meta->num_trees += static_cast<int>(pcie_trees.size());
            for (const auto& tree : pcie_trees) {
              const double tree_bytes =
                  split.pcie_bytes * tree.weight / [&] {
                    double t = 0.0;
                    for (const auto& pt : pcie_trees) t += pt.weight;
                    return t;
                  }();
              const int chunks = builder.chunks_for(tree_bytes);
              const std::vector<int> gates(static_cast<std::size_t>(chunks),
                                           dpa);
              builder.tree_broadcast_chunks(tree, tree_bytes, chunks, gates);
            }
            break;
          }
        }
        builder.broadcast(trees, bytes);
        break;
      }
      builder.broadcast(trees, bytes);
      break;
    }
    case CollectiveKind::kGather:
      builder.gather(trees, bytes);
      break;
    case CollectiveKind::kReduce:
      builder.reduce(trees, bytes);
      break;
    case CollectiveKind::kAllReduce:
      builder.all_reduce(trees, bytes);
      break;
    case CollectiveKind::kAllGather:
      builder.all_gather(trees, bytes);
      break;
    case CollectiveKind::kReduceScatter: {
      // One shard per GPU, reduced to its owner; all shards run in one
      // schedule and share the fabric.
      const double shard = bytes / topo_.num_gpus;
      if (topo_.has_nvswitch) {
        builder.reduce(trees, bytes);  // one-hop trees already shard by root
      } else {
        for (int r = 0; r < topo_.num_gpus; ++r) {
          const auto shard_trees =
              route_trees(fabric_, 0, use(shared_tree_set(r)));
          if (!shard_trees.empty()) builder.reduce(shard_trees, shard);
        }
      }
      break;
    }
  }

  double heaviest = 0.0;
  double total = 0.0;
  for (const auto& t : trees) total += t.weight;
  for (const auto& t : trees) heaviest = std::max(heaviest, t.weight);
  meta->num_chunks = builder.chunks_for(bytes * heaviest / total);
  return builder.take();
}

CollectiveResult BlinkBackend::probe(CollectiveKind kind, double bytes,
                                     int root, std::uint64_t chunk_bytes) {
  CollectiveResult result;
  result.bytes = bytes;
  const sim::Program program =
      build_program(kind, bytes, root, chunk_bytes, &result, nullptr);
  result.num_ops = static_cast<int>(program.ops().size());
  const sim::RunResult run = sim::execute(fabric_, program);
  result.seconds = run.makespan;
  result.algorithm_bw = run.throughput(bytes);
  return result;
}

LoweredCollective BlinkBackend::lower_at_chunk(CollectiveKind kind,
                                               double bytes, int root,
                                               std::uint64_t chunk_bytes) {
  LoweredCollective lowered;
  lowered.chunk_bytes = chunk_bytes;
  lowered.meta.bytes = bytes;
  std::vector<TreeSetPtr> used_sets;
  lowered.program =
      build_program(kind, bytes, root, chunk_bytes, &lowered.meta, &used_sets);
  lowered.meta.num_ops = static_cast<int>(lowered.program.ops().size());
  // Deduplicate: the reduce-scatter path visits the same set per shard root,
  // and the NVLink slot may alias the PCIe fallback.
  std::sort(used_sets.begin(), used_sets.end());
  used_sets.erase(std::unique(used_sets.begin(), used_sets.end()),
                  used_sets.end());
  lowered.tree_sets = std::move(used_sets);
  return lowered;
}

std::uint64_t BlinkBackend::planning_fingerprint() const {
  FingerprintHasher fp;
  hash_options(options_.treegen, &fp);
  hash_options(options_.codegen, &fp);
  fp.i32(options_.hybrid);
  fp.f64(options_.dpa_base_latency);
  fp.f64(options_.dpa_per_gpu_latency);
  return fp.value();
}

LoweredCollective BlinkBackend::lower(CollectiveKind kind, double bytes,
                                      int root) {
  std::uint64_t chunk = options_.codegen.chunk_bytes;
  if (chunk == 0) {
    chunk = blink::tune_chunk_size(
                [&](std::uint64_t c) {
                  return probe(kind, bytes, root, c).algorithm_bw;
                },
                MiadOptions{})
                .selected_chunk;
  }
  return lower_at_chunk(kind, bytes, root, chunk);
}

// --- Communicator -----------------------------------------------------------

Communicator::Communicator(topo::Topology topo, CommunicatorOptions options)
    : CollectiveEngine(std::move(topo), options.fabric,
                       EngineOptions{options.memoize,
                                     options.plan_cache_capacity,
                                     options.plan_store_dir,
                                     options.planner_threads}),
      options_(std::move(options)) {
  auto backend =
      std::make_unique<BlinkBackend>(topology(), fabric(), options_);
  blink_ = backend.get();
  register_backend(std::move(backend));
}

// The backend synchronizes its own lazy state (per-slot once flags, probe
// cache lock), so these accessors need no engine lock and never serialize
// against an in-flight compile.
const TreeSet& Communicator::tree_set(int root) {
  return *blink_->shared_tree_set(root);
}

const TreeSet& Communicator::bidir_tree_set(int root) {
  return *blink_->shared_bidir_tree_set(root);
}

const TreeSet& Communicator::pcie_tree_set(int root) {
  return *blink_->shared_pcie_tree_set(root);
}

int Communicator::best_root() { return blink_->best_root(); }

MiadResult Communicator::tune_chunk_size(CollectiveKind kind, double bytes,
                                         int root, const MiadOptions& miad) {
  if (root < 0) root = blink_->default_root(kind);
  MiadResult result = blink::tune_chunk_size(
      [&](std::uint64_t chunk) {
        const CollectiveResult r = blink_->probe(kind, bytes, root, chunk);
        return r.algorithm_bw;
      },
      miad);
  // Prime the plan cache with the schedule compile() would produce at this
  // shape (the tuned chunk in auto mode; a fixed codegen.chunk_bytes wins
  // over the tuner, matching compile()'s own policy), so the next collective
  // here is a cache hit.
  const std::uint64_t chunk = options_.codegen.chunk_bytes != 0
                                  ? options_.codegen.chunk_bytes
                                  : result.selected_chunk;
  adopt_plan(kind, bytes, root, /*backend=*/0,
             blink_->lower_at_chunk(kind, bytes, root, chunk));
  return result;
}

}  // namespace blink
