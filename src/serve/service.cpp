#include "blink/serve/service.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "blink/baselines/backends.h"
#include "blink/baselines/nccl_like.h"
#include "blink/blink/communicator.h"
#include "blink/blink/engine.h"
#include "blink/common/logging.h"
#include "blink/common/thread_pool.h"
#include "blink/sim/fabric.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink::serve {

namespace {

double steady_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The shard key: requests with identical specs share one engine. The
// backend is part of the key because it changes what lowering emits (and
// the engine's fabric fingerprint).
std::string spec_key(const FabricSpec& spec) {
  std::string key = spec.machine;
  key += '|';
  key += spec.backend;
  key += '|';
  for (const int id : spec.gpu_ids) {
    key += std::to_string(id);
    key += ',';
  }
  return key;
}

topo::Topology build_machine(const std::string& machine) {
  if (machine == "dgx1p") return topo::make_dgx1p();
  if (machine == "dgx1v") return topo::make_dgx1v();
  if (machine == "dgx2") return topo::make_dgx2();
  throw std::invalid_argument("unknown machine kind: " + machine);
}

// Builds the shard engine for a spec, mirroring the facade's communicator
// factory: Communicator for "blink", baseline engines otherwise, everything
// registered on one Communicator for "auto". Throws std::invalid_argument on
// a bad spec — the worker maps that to kInvalidRequest.
std::unique_ptr<CollectiveEngine> build_engine(const FabricSpec& spec,
                                               const ServiceOptions& options,
                                               int* engine_backend) {
  using baselines::NcclOptions;
  *engine_backend = 0;
  const topo::Topology full = build_machine(spec.machine);
  for (const int id : spec.gpu_ids) {
    if (id < 0 || id >= full.num_gpus) {
      throw std::invalid_argument("gpu id out of range for " + spec.machine);
    }
  }
  auto topo = topo::induced_topology(full, spec.gpu_ids);
  if (spec.backend == "blink" || spec.backend == "auto") {
    CommunicatorOptions comm_options;
    comm_options.plan_cache_capacity = options.plan_cache_capacity;
    comm_options.plan_store_dir = options.store_dir;
    comm_options.planner_threads = options.planner_threads;
    auto engine =
        std::make_unique<Communicator>(std::move(topo), comm_options);
    if (spec.backend == "auto") {
      for (const char* name : {"nccl", "ring", "double_binary", "butterfly"}) {
        engine->register_backend(baselines::make_baseline_backend(
            name, engine->topology(), engine->fabric(), NcclOptions{}));
      }
      *engine_backend = CollectiveEngine::kAutoBackend;
    }
    return engine;
  }
  if (spec.backend == "nccl") {
    NcclOptions nccl_options;
    nccl_options.plan_cache_capacity = options.plan_cache_capacity;
    nccl_options.plan_store_dir = options.store_dir;
    nccl_options.planner_threads = options.planner_threads;
    return std::make_unique<baselines::NcclCommunicator>(std::move(topo),
                                                         nccl_options);
  }
  if (spec.backend == "ring" || spec.backend == "double_binary" ||
      spec.backend == "butterfly") {
    const NcclOptions nccl_options;  // persistent-kernel step costs
    auto engine = std::make_unique<CollectiveEngine>(
        std::move(topo),
        baselines::apply_persistent_kernel_model(nccl_options.fabric),
        EngineOptions{nccl_options.memoize, options.plan_cache_capacity,
                      options.store_dir, options.planner_threads});
    engine->register_backend(baselines::make_baseline_backend(
        spec.backend, engine->topology(), engine->fabric(), nccl_options));
    return engine;
  }
  throw std::invalid_argument("unknown backend: " + spec.backend);
}

// Parses a kRepair request's health-event fields against the shard's
// fabric. Throws std::invalid_argument (mapped to kInvalidRequest by the
// worker) on an unknown event kind or channel name; the fabric's own apply()
// validation covers the rest (bad factor, bad GPU, already-failed channel).
sim::HealthEvent parse_health_event(const ServeRequest& request,
                                    const sim::Fabric& fabric) {
  sim::HealthEvent event;
  if (request.event == "degrade_link") {
    event.kind = sim::HealthEventKind::kDegradeLink;
  } else if (request.event == "fail_link") {
    event.kind = sim::HealthEventKind::kFailLink;
  } else if (request.event == "fail_gpu") {
    event.kind = sim::HealthEventKind::kFailGpu;
  } else if (request.event == "restore") {
    event.kind = sim::HealthEventKind::kRestoreAll;
  } else {
    throw std::invalid_argument(
        "unknown health event: '" + request.event +
        "' (want degrade_link, fail_link, fail_gpu or restore)");
  }
  event.factor = request.factor;
  if (event.kind == sim::HealthEventKind::kDegradeLink ||
      event.kind == sim::HealthEventKind::kFailLink) {
    for (int c = 0; c < fabric.num_channels(); ++c) {
      if (fabric.channel_name(c) == request.channel) {
        event.channel = c;
        break;
      }
    }
    if (event.channel < 0) {
      throw std::invalid_argument("unknown channel: '" + request.channel +
                                  "'");
    }
  }
  if (event.kind == sim::HealthEventKind::kFailGpu) {
    event.server = 0;  // serve shards are single-server fabrics
    event.gpu = request.gpu;
  }
  return event;
}

std::size_t latency_bucket(double seconds) {
  double us = seconds * 1e6;
  std::size_t bucket = 0;
  while (us >= 2.0 && bucket + 1 < kLatencyBuckets) {
    us *= 0.5;
    ++bucket;
  }
  return bucket;
}

}  // namespace

const char* to_string(RequestType type) {
  switch (type) {
    case RequestType::kCompile:
      return "compile";
    case RequestType::kExecute:
      return "execute";
    case RequestType::kWarmLoad:
      return "warm_load";
    case RequestType::kInvalidate:
      return "invalidate";
    case RequestType::kPrecompile:
      return "precompile";
    case RequestType::kRepair:
      return "repair";
  }
  return "?";
}

const char* to_string(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kRejectedQuota:
      return "rejected_quota";
    case ServeStatus::kRejectedInFlight:
      return "rejected_in_flight";
    case ServeStatus::kRejectedQueueFull:
      return "rejected_queue_full";
    case ServeStatus::kInvalidRequest:
      return "invalid_request";
    case ServeStatus::kInternalError:
      return "internal_error";
  }
  return "?";
}

struct PlanService::Shard {
  std::unique_ptr<CollectiveEngine> engine;
  // Backend id compiles use: 0 (the default backend) or kAutoBackend.
  int engine_backend = 0;
  // Cumulative repair/invalidate bookkeeping; guarded by Impl::shard_mu.
  ShardHealthCounters health;
};

struct PlanService::TenantState {
  TokenBucket bucket;
  std::size_t max_in_flight = 0;
  std::size_t in_flight = 0;
  TenantCounters counters;
};

struct PlanService::Job {
  ServeRequest request;
  std::promise<ServeResponse> promise;
  double submit_time = 0.0;
};

struct PlanService::Impl {
  ServiceOptions options;
  std::function<double()> clock;

  // The request workers: the repo's one thread-pool implementation, owned
  // by the service so request serving and the shared planner pool's
  // cold-path fan-out never starve each other. Admitted jobs are post()ed;
  // pause_workers()/resume_workers() map to pool pause()/resume(), and the
  // pool's drain-on-destruction is exactly the old shutdown contract
  // (every admitted request still gets served).
  std::unique_ptr<common::ThreadPool> pool;

  // Admission + stats state. Never held across planning work: submit()
  // takes it to admission-check and post, workers to bump counters after
  // serving.
  mutable std::mutex mu;
  bool stop = false;
  std::size_t queue_high_water = 0;
  std::map<std::string, TenantState> tenants;
  std::array<std::uint64_t, kLatencyBuckets> compile_latency_us{};
  std::array<std::uint64_t, kLatencyBuckets> execute_latency_us{};
  std::uint64_t gc_runs = 0;
  StoreGcReport last_gc;
  std::size_t completed_since_gc = 0;

  // The shard map. Shards are created on first use and never destroyed
  // before the service, so engine pointers handed out under this lock stay
  // valid without it.
  mutable std::mutex shard_mu;
  std::map<std::string, Shard> shards;

  const TenantQuota& quota_for(const std::string& tenant) const {
    const auto it = options.tenant_quotas.find(tenant);
    return it == options.tenant_quotas.end() ? options.default_quota
                                             : it->second;
  }

  // The tenant's state, created full-bucket on first sight. Caller holds mu.
  TenantState& tenant_state_locked(const std::string& tenant, double now) {
    const auto it = tenants.find(tenant);
    if (it != tenants.end()) return it->second;
    const TenantQuota& quota = quota_for(tenant);
    return tenants
        .emplace(tenant,
                 TenantState{TokenBucket(quota.compile_rate,
                                         quota.compile_burst, now),
                             quota.max_in_flight, 0, TenantCounters{}})
        .first->second;
  }

  // The existing shard's engine, or nullptr — the admission-time warm peek
  // must not pay for engine construction.
  CollectiveEngine* find_engine(const FabricSpec& spec, int* engine_backend) {
    const std::lock_guard<std::mutex> lock(shard_mu);
    const auto it = shards.find(spec_key(spec));
    if (it == shards.end()) return nullptr;
    *engine_backend = it->second.engine_backend;
    return it->second.engine.get();
  }

  Shard& get_or_create_shard(const FabricSpec& spec) {
    const std::string key = spec_key(spec);
    const std::lock_guard<std::mutex> lock(shard_mu);
    const auto it = shards.find(key);
    if (it != shards.end()) return it->second;
    Shard shard;
    shard.engine = build_engine(spec, options, &shard.engine_backend);
    BLINK_LOG(kInfo) << "serve: new shard " << key << " fingerprint "
                     << shard.engine->fabric_fingerprint();
    return shards.emplace(key, std::move(shard)).first->second;
  }

  ServeResponse serve(const ServeRequest& request) {
    ServeResponse response;
    try {
      Shard& shard = get_or_create_shard(request.fabric);
      CollectiveEngine& engine = *shard.engine;
      switch (request.type) {
        case RequestType::kCompile: {
          response.warm_hit = engine.has_cached_plan(
              request.kind, request.bytes, request.root, shard.engine_backend);
          const auto plan = engine.compile(request.kind, request.bytes,
                                           request.root, shard.engine_backend);
          response.result = plan->meta();
          break;
        }
        case RequestType::kExecute: {
          response.warm_hit = engine.has_cached_plan(
              request.kind, request.bytes, request.root, shard.engine_backend);
          const auto plan = engine.compile(request.kind, request.bytes,
                                           request.root, shard.engine_backend);
          response.result = engine.execute(*plan);
          break;
        }
        case RequestType::kWarmLoad: {
          const std::string path = engine.plan_store_path();
          if (path.empty()) {
            response.status = ServeStatus::kInvalidRequest;
            response.message = "persistence disabled: no store_dir";
            return response;
          }
          std::error_code ec;
          if (std::filesystem::exists(path, ec) && !ec) {
            response.plans_touched = engine.import_plans(path);
          }
          break;
        }
        case RequestType::kInvalidate: {
          const InvalidateReport report = engine.invalidate_plans();
          response.plans_touched = report.dropped;
          response.plans_retained = report.retained;
          const std::lock_guard<std::mutex> lock(shard_mu);
          ++shard.health.invalidations;
          shard.health.plans_dropped += report.dropped;
          shard.health.plans_retained += report.retained;
          break;
        }
        case RequestType::kRepair: {
          const sim::HealthEvent event =
              parse_health_event(request, engine.fabric());
          const RepairReport report = engine.repair_plans(event);
          response.plans_touched = report.dropped;
          response.plans_retained = report.retained;
          const std::lock_guard<std::mutex> lock(shard_mu);
          ++shard.health.repairs;
          shard.health.plans_dropped += report.dropped;
          shard.health.plans_retained += report.retained;
          break;
        }
        case RequestType::kPrecompile:
          // One batched pass over every kind; warm_hit stays false so the
          // completion counters book it as compile work.
          response.plans_touched = engine.precompile(
              request.bytes, request.root, shard.engine_backend);
          break;
      }
      response.shard_fingerprint = engine.fabric_fingerprint();
    } catch (const std::invalid_argument& e) {
      response = ServeResponse{};
      response.status = ServeStatus::kInvalidRequest;
      response.message = e.what();
    } catch (const std::exception& e) {
      response = ServeResponse{};
      response.status = ServeStatus::kInternalError;
      response.message = e.what();
    }
    return response;
  }

  void complete(Job& job, ServeResponse response) {
    const double latency = clock() - job.submit_time;
    const bool collective = job.request.type == RequestType::kCompile ||
                            job.request.type == RequestType::kExecute ||
                            job.request.type == RequestType::kPrecompile;
    bool gc_due = false;
    {
      const std::lock_guard<std::mutex> lock(mu);
      TenantState& ts = tenant_state_locked(job.request.tenant, job.submit_time);
      if (ts.in_flight > 0) --ts.in_flight;
      ++ts.counters.completed;
      if (response.status == ServeStatus::kOk && collective) {
        if (response.warm_hit) {
          ++ts.counters.warm_hits;
        } else {
          ++ts.counters.compiles;
        }
      }
      if (response.status == ServeStatus::kInvalidRequest) {
        ++ts.counters.invalid;
      } else if (response.status == ServeStatus::kInternalError) {
        ++ts.counters.errors;
      }
      if (collective && latency >= 0.0) {
        auto& hist = job.request.type == RequestType::kExecute
                         ? execute_latency_us
                         : compile_latency_us;  // compile + precompile
        ++hist[latency_bucket(latency)];
      }
      if (options.gc_interval_requests > 0 &&
          ++completed_since_gc >= options.gc_interval_requests) {
        completed_since_gc = 0;
        gc_due = true;
      }
    }
    job.promise.set_value(std::move(response));
    if (gc_due) run_gc();
  }

  StoreGcReport run_gc() {
    if (options.store_dir.empty()) return StoreGcReport{};
    StoreGcOptions gc = options.gc;
    gc.protect.clear();
    {
      const std::lock_guard<std::mutex> lock(shard_mu);
      for (const auto& [key, shard] : shards) {
        const std::string path = shard.engine->plan_store_path();
        if (!path.empty()) gc.protect.push_back(path);
      }
    }
    const StoreGcReport report = store_gc(options.store_dir, gc);
    {
      const std::lock_guard<std::mutex> lock(mu);
      ++gc_runs;
      last_gc = report;
    }
    return report;
  }

};

PlanService::PlanService(ServiceOptions options) : impl_(new Impl) {
  impl_->options = std::move(options);
  impl_->clock =
      impl_->options.clock ? impl_->options.clock : std::function<double()>(steady_now);
  if (impl_->options.num_workers < 1) impl_->options.num_workers = 1;
  if (impl_->options.gc_on_start && !impl_->options.store_dir.empty()) {
    impl_->run_gc();
  }
  impl_->pool = std::make_unique<common::ThreadPool>(
      static_cast<std::size_t>(impl_->options.num_workers));
}

PlanService::~PlanService() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;  // submit() now rejects; nothing new gets posted
  }
  // The pool destructor resumes a paused service and drains every admitted
  // request before joining — the old shutdown contract, verbatim.
  impl_->pool.reset();
  // Shard engines flush their plan caches to the store in their destructors.
}

std::future<ServeResponse> PlanService::submit(ServeRequest request) {
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();
  const double now = impl_->clock();

  const bool collective = request.type == RequestType::kCompile ||
                          request.type == RequestType::kExecute ||
                          request.type == RequestType::kPrecompile;
  std::string invalid_reason;
  if (request.tenant.empty()) {
    invalid_reason = "tenant must be named";
  } else if (request.fabric.gpu_ids.empty()) {
    invalid_reason = "fabric spec has no GPUs";
  } else if (collective && !(request.bytes > 0.0)) {
    invalid_reason = "collective size must be positive";
  }

  // Warm requests bypass the compile quota: peek the shard's cache without
  // creating the shard (a never-seen fabric is by definition cold). A
  // precompile never takes the bypass — warming a shape is cold work even
  // when some kinds are already cached.
  bool warm = false;
  if (collective && request.type != RequestType::kPrecompile &&
      invalid_reason.empty()) {
    int engine_backend = 0;
    if (CollectiveEngine* engine =
            impl_->find_engine(request.fabric, &engine_backend)) {
      warm = engine->has_cached_plan(request.kind, request.bytes, request.root,
                                     engine_backend);
    }
  }

  const auto reject = [&](ServeStatus status, std::string message) {
    ServeResponse response;
    response.status = status;
    response.message = std::move(message);
    promise.set_value(std::move(response));
    return std::move(future);
  };

  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    TenantState& ts = impl_->tenant_state_locked(request.tenant, now);
    ++ts.counters.submitted;
    if (!invalid_reason.empty()) {
      ++ts.counters.invalid;
      return reject(ServeStatus::kInvalidRequest, invalid_reason);
    }
    if (impl_->stop) {
      ++ts.counters.errors;
      return reject(ServeStatus::kInternalError, "service shutting down");
    }
    if (ts.in_flight >= ts.max_in_flight) {
      ++ts.counters.rejected_in_flight;
      return reject(ServeStatus::kRejectedInFlight,
                    "tenant in-flight limit reached");
    }
    if (impl_->pool->queue_depth() >= impl_->options.queue_capacity) {
      ++ts.counters.rejected_queue_full;
      return reject(ServeStatus::kRejectedQueueFull, "admission queue full");
    }
    // Last, so a rejected request never drains a token.
    if (collective && !warm && !ts.bucket.try_acquire(now)) {
      ++ts.counters.rejected_quota;
      return reject(ServeStatus::kRejectedQuota,
                    "tenant compile quota exhausted");
    }
    ++ts.in_flight;
    ++ts.counters.admitted;
    // Posting under mu keeps the capacity check and the enqueue atomic
    // (workers popping concurrently only ever free space).
    auto job = std::make_shared<Job>(
        Job{std::move(request), std::move(promise), now});
    impl_->pool->post([impl = impl_.get(), job] {
      impl->complete(*job, impl->serve(job->request));
    });
    impl_->queue_high_water =
        std::max(impl_->queue_high_water, impl_->pool->queue_depth());
  }
  return future;
}

ServeResponse PlanService::handle(ServeRequest request) {
  return submit(std::move(request)).get();
}

ServiceStats PlanService::stats() const {
  ServiceStats stats;
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto& [name, state] : impl_->tenants) {
      stats.tenants.emplace(name, state.counters);
      const TenantCounters& c = state.counters;
      stats.totals.submitted += c.submitted;
      stats.totals.admitted += c.admitted;
      stats.totals.completed += c.completed;
      stats.totals.warm_hits += c.warm_hits;
      stats.totals.compiles += c.compiles;
      stats.totals.rejected_quota += c.rejected_quota;
      stats.totals.rejected_in_flight += c.rejected_in_flight;
      stats.totals.rejected_queue_full += c.rejected_queue_full;
      stats.totals.invalid += c.invalid;
      stats.totals.errors += c.errors;
    }
    stats.queue_depth = impl_->pool->queue_depth();
    stats.queue_high_water = impl_->queue_high_water;
    stats.compile_latency_us = impl_->compile_latency_us;
    stats.execute_latency_us = impl_->execute_latency_us;
    stats.gc_runs = impl_->gc_runs;
    stats.last_gc = impl_->last_gc;
  }
  {
    const std::lock_guard<std::mutex> lock(impl_->shard_mu);
    stats.num_shards = impl_->shards.size();
    for (const auto& [key, shard] : impl_->shards) {
      const PlanCache& cache = shard.engine->plan_cache();
      stats.cache_hits += cache.hits();
      stats.cache_misses += cache.misses();
      stats.cache_evictions += cache.evictions();
      stats.shard_health.emplace(key, shard.health);
    }
  }
  return stats;
}

std::size_t PlanService::flush() {
  const std::lock_guard<std::mutex> lock(impl_->shard_mu);
  std::size_t written = 0;
  for (const auto& [key, shard] : impl_->shards) {
    written += shard.engine->flush_plans();
  }
  return written;
}

StoreGcReport PlanService::run_gc() { return impl_->run_gc(); }

std::size_t PlanService::num_shards() const {
  const std::lock_guard<std::mutex> lock(impl_->shard_mu);
  return impl_->shards.size();
}

void PlanService::pause_workers() { impl_->pool->pause(); }

void PlanService::resume_workers() { impl_->pool->resume(); }

}  // namespace blink::serve
