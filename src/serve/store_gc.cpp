#include "blink/serve/store_gc.h"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "blink/common/logging.h"

namespace blink::serve {
namespace fs = std::filesystem;

namespace {

bool is_store_file(const fs::path& path) {
  const std::string name = path.filename().string();
  return name.size() > std::string("plans-.bpc").size() &&
         name.rfind("plans-", 0) == 0 &&
         name.compare(name.size() - 4, 4, ".bpc") == 0;
}

bool is_protected(const fs::path& path,
                  const std::vector<fs::path>& protected_paths) {
  for (const fs::path& p : protected_paths) {
    std::error_code ec;
    if (fs::equivalent(path, p, ec) && !ec) return true;
    // equivalent() fails when the protected file does not exist yet (a live
    // shard that has not flushed); fall back to comparing normalized names.
    if (path.lexically_normal() == p.lexically_normal()) return true;
  }
  return false;
}

}  // namespace

StoreGcReport store_gc(const std::string& dir, const StoreGcOptions& options) {
  StoreGcReport report;
  std::error_code ec;
  if (dir.empty() || !fs::is_directory(dir, ec) || ec) return report;

  std::vector<fs::path> protected_paths;
  protected_paths.reserve(options.protect.size());
  for (const std::string& p : options.protect) {
    if (!p.empty()) protected_paths.emplace_back(p);
  }

  struct Candidate {
    fs::path path;
    std::uint64_t size = 0;
    fs::file_time_type mtime;
  };
  std::vector<Candidate> evictable;
  std::uint64_t protected_bytes = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec) || entry_ec) continue;
    if (!is_store_file(entry.path())) continue;
    const std::uint64_t size = entry.file_size(entry_ec);
    if (entry_ec) continue;  // vanished mid-sweep
    const fs::file_time_type mtime = entry.last_write_time(entry_ec);
    if (entry_ec) continue;
    ++report.files_scanned;
    report.bytes_scanned += size;
    if (is_protected(entry.path(), protected_paths)) {
      ++report.files_protected;
      protected_bytes += size;
      continue;
    }
    evictable.push_back(Candidate{entry.path(), size, mtime});
  }

  std::uint64_t evictable_bytes = 0;
  for (const Candidate& c : evictable) evictable_bytes += c.size;
  report.bytes_remaining = protected_bytes + evictable_bytes;
  if (options.max_total_bytes == 0) return report;  // report-only sweep

  // Oldest mtime first: the engine flush rewrites (and a warm-load-then-
  // flush refreshes) the files still in use, so stale fabrics sink to the
  // front of the eviction order.
  std::sort(evictable.begin(), evictable.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.path < b.path;  // deterministic tie-break
            });
  for (const Candidate& c : evictable) {
    if (report.bytes_remaining <= options.max_total_bytes) break;
    std::error_code rm_ec;
    if (!fs::remove(c.path, rm_ec) || rm_ec) continue;  // already gone
    ++report.files_evicted;
    report.bytes_evicted += c.size;
    report.bytes_remaining -= c.size;
    BLINK_LOG(kInfo) << "store_gc: evicted " << c.path.string() << " ("
                     << c.size << " bytes)";
  }
  if (report.bytes_remaining > options.max_total_bytes) {
    BLINK_LOG(kWarning) << "store_gc: " << dir << " still holds "
                        << report.bytes_remaining
                        << " bytes of protected store files (cap "
                        << options.max_total_bytes << ")";
  }
  return report;
}

}  // namespace blink::serve
