// Shared helpers for the per-figure benchmark binaries. Every binary prints
// the rows/series of one paper table or figure (see DESIGN.md §4) so the
// full evaluation regenerates with:  for b in build/bench/*; do $b; done
#pragma once

#include <string>
#include <vector>

#include "blink/baselines/nccl_like.h"
#include "blink/blink/communicator.h"
#include "blink/topology/binning.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink::bench {

// "1,4,5,7"-style label for an allocation (Figures 15-17 x-axis).
std::string alloc_label(const std::vector<int>& gpus);

// Geometric mean of positive values.
double geo_mean(const std::vector<double>& values);

// Prints the standard figure banner.
void banner(const std::string& figure, const std::string& description);

}  // namespace blink::bench
