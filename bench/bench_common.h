// Shared helpers for the per-figure benchmark binaries. Every binary prints
// the rows/series of one paper table or figure (see DESIGN.md §4) so the
// full evaluation regenerates with:  for b in build/bench/*; do $b; done
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "blink/baselines/backends.h"
#include "blink/baselines/nccl_like.h"
#include "blink/blink/communicator.h"
#include "blink/blink/engine.h"
#include "blink/topology/binning.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink::bench {

// "1,4,5,7"-style label for an allocation (Figures 15-17 x-axis).
std::string alloc_label(const std::vector<int>& gpus);

// Geometric mean of positive values.
double geo_mean(const std::vector<double>& values);

// Prints the standard figure banner.
void banner(const std::string& figure, const std::string& description);

// --- backend comparison ------------------------------------------------------
// One comparison backend: a name plus a factory building a ready-to-run
// engine (its default backend registered) for an allocation's topology.
struct BackendFactory {
  std::string name;
  std::function<std::unique_ptr<CollectiveEngine>(const topo::Topology&)> make;
};

// The standard head-to-head set of Figures 15-17: Blink vs the NCCL2
// baseline, each with its own engine and fabric model.
std::vector<BackendFactory> comparison_backends();

// Runs |kind| at every size in |sizes| on every backend in |backends| over
// |topo| through the unified compile/execute interface (one engine per
// backend, so warm sizes hit its plan cache). result[i][j] is backends[i]
// at sizes[j].
std::vector<std::vector<CollectiveResult>> run_backends(
    const std::vector<BackendFactory>& backends, const topo::Topology& topo,
    CollectiveKind kind, std::span<const double> sizes, int root = -1);

}  // namespace blink::bench
