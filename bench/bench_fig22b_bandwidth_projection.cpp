// Figure 22b (§5.4): 100 MB AllReduce throughput across two servers (3+5
// GPU split) as the cross-machine link grows 40 -> 100 -> 400 Gbps. NCCL's
// ring stays bound by intra-server PCIe; Blink tracks the NIC until the
// intra-server NVLink trees saturate.
#include <cstdio>

#include "bench_common.h"
#include "blink/blink/multiserver.h"
#include "blink/common/units.h"

int main() {
  using namespace blink;
  bench::banner("Figure 22b",
                "Cross-machine AllReduce projection, 100 MB, 3+5 GPUs");
  const auto machine = topo::make_dgx1v();
  const std::vector<topo::Topology> servers{
      topo::induced_topology(machine, std::vector<int>{0, 1, 2}),
      topo::induced_topology(machine, std::vector<int>{3, 4, 5, 6, 7})};

  std::printf("%-12s %12s %12s %8s\n", "NIC", "NCCL", "Blink", "ratio");
  for (const double gbit : {40.0, 100.0, 400.0}) {
    ClusterOptions blink_opts;
    blink_opts.fabric.nic_bw = gbitps(gbit);
    ClusterCommunicator blink_cluster(servers, blink_opts);
    baselines::NcclOptions nccl_opts;
    nccl_opts.fabric.nic_bw = gbitps(gbit);
    const auto nccl_r =
        baselines::multi_server_ring_all_reduce(servers, 100e6, nccl_opts);
    const auto blink_r = blink_cluster.all_reduce(100e6);
    std::printf("%6.0f Gbps %10.2f %12.2f %7.2fx\n", gbit,
                nccl_r.algorithm_bw / 1e9, blink_r.algorithm_bw / 1e9,
                blink_r.algorithm_bw / nccl_r.algorithm_bw);
  }
  std::printf("\npaper: NCCL plateaus at PCIe rate while Blink keeps "
              "scaling with the interconnect.\n");
  return 0;
}
