// Figure 22b (§5.4): 100 MB AllReduce throughput across two servers (3+5
// GPU split) as the cross-machine link grows 40 -> 100 -> 400 Gbps. NCCL's
// ring stays bound by intra-server PCIe; Blink tracks the NIC until the
// intra-server NVLink trees saturate.
//
// Extended with the NIC-aware phase-2 projections:
//   * per-server / total phase-2 NIC volume versus server count for the
//     ring exchange against the flat all-to-all — ring volume must grow
//     linearly with the server count, not quadratically (exit 1 otherwise);
//   * a heterogeneous two-server cluster (unequal NVLink rates) where
//     bandwidth-weighted partition sizing must beat the equal split on
//     modeled AllReduce time (exit 1 otherwise).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "blink/blink/multiserver.h"
#include "blink/common/units.h"

namespace {

using namespace blink;

// Max over servers of the schedule's NIC egress volume.
double max_per_server_egress(const ClusterCommunicator& comm,
                             const sim::Program& program, double* total) {
  double worst = 0.0;
  *total = 0.0;
  for (int s = 0; s < comm.num_servers(); ++s) {
    const double v = nic_egress_bytes(comm.fabric(), program, s);
    worst = std::max(worst, v);
    *total += v;
  }
  return worst;
}

}  // namespace

int main() {
  using namespace blink;
  bench::banner("Figure 22b",
                "Cross-machine AllReduce projection, 100 MB, 3+5 GPUs");
  const auto machine = topo::make_dgx1v();
  const std::vector<topo::Topology> servers{
      topo::induced_topology(machine, std::vector<int>{0, 1, 2}),
      topo::induced_topology(machine, std::vector<int>{3, 4, 5, 6, 7})};

  std::printf("%-12s %12s %12s %8s\n", "NIC", "NCCL", "Blink", "ratio");
  for (const double gbit : {40.0, 100.0, 400.0}) {
    ClusterOptions blink_opts;
    blink_opts.fabric.nic_bw = gbitps(gbit);
    ClusterCommunicator blink_cluster(servers, blink_opts);
    baselines::NcclOptions nccl_opts;
    nccl_opts.fabric.nic_bw = gbitps(gbit);
    const auto nccl_r =
        baselines::multi_server_ring_all_reduce(servers, 100e6, nccl_opts);
    const auto blink_r = blink_cluster.all_reduce(100e6);
    std::printf("%6.0f Gbps %10.2f %12.2f %7.2fx\n", gbit,
                nccl_r.algorithm_bw / 1e9, blink_r.algorithm_bw / 1e9,
                blink_r.algorithm_bw / nccl_r.algorithm_bw);
  }
  std::printf("\npaper: NCCL plateaus at PCIe rate while Blink keeps "
              "scaling with the interconnect.\n");

  // --- phase-2 NIC volume versus server count -------------------------------
  // Identical 4-GPU fragments so only the exchange topology varies. The ring
  // forwards each partition at most twice per server, so its per-server
  // egress is flat and the cluster-wide volume grows linearly; the flat
  // all-to-all sends every partial to every server, quadratic in total.
  std::printf("\nphase-2 NIC volume, 64 MB AllReduce on identical 4-GPU "
              "servers\n");
  std::printf("%-8s | %14s %14s | %14s %14s | %s\n", "servers",
              "a2a MB/server", "a2a MB total", "ring MB/server",
              "ring MB total", "auto picks");
  const auto quad =
      topo::induced_topology(machine, std::vector<int>{4, 5, 6, 7});
  std::vector<double> ring_per_server, ring_total, atoa_total;
  bool volumes_ok = true;
  for (int n = 2; n <= 6; ++n) {
    const std::vector<topo::Topology> cluster(static_cast<std::size_t>(n),
                                              quad);
    double per[2] = {0.0, 0.0}, tot[2] = {0.0, 0.0};
    const Phase2Policy forced[2] = {Phase2Policy::kAllToAll,
                                    Phase2Policy::kRing};
    for (int i = 0; i < 2; ++i) {
      ClusterOptions opts;
      opts.phase2 = forced[i];
      ClusterCommunicator comm(cluster, opts);
      const auto plan = comm.compile(CollectiveKind::kAllReduce, 64e6);
      per[i] = max_per_server_egress(comm, plan->program(), &tot[i]);
    }
    ClusterOptions auto_opts;
    ClusterCommunicator auto_comm(cluster, auto_opts);
    const auto auto_plan = auto_comm.compile(CollectiveKind::kAllReduce, 64e6);
    std::printf("%-8d | %14.1f %14.1f | %14.1f %14.1f | %s\n", n, per[0] / 1e6,
                tot[0] / 1e6, per[1] / 1e6, tot[1] / 1e6,
                to_string(auto_plan->phase2_strategy()));
    ring_per_server.push_back(per[1]);
    ring_total.push_back(tot[1]);
    atoa_total.push_back(tot[0]);
  }
  // Linear, not quadratic: every server sends each partition at most twice
  // under the ring (once accumulating, once distributing), so per-server
  // egress is bounded by 2x the payload however many servers join and the
  // cluster-wide volume grows linearly — doubling the cluster from 3 to 6
  // servers grows ring volume ~2x where the all-to-all grows ~5x.
  const double ring_growth = ring_total[4] / ring_total[1];  // n=6 vs n=3
  const double atoa_growth = atoa_total[4] / atoa_total[1];
  for (const double per : ring_per_server) {
    if (per > 2.0 * 64e6 * 1.001) volumes_ok = false;  // bounded per server
  }
  if (ring_growth > 3.0 || atoa_growth < 4.0) volumes_ok = false;
  std::printf("ring total x%.2f vs all-to-all x%.2f when 3 -> 6 servers "
              "(ring per-server <= 2x payload everywhere): %s\n",
              ring_growth, atoa_growth,
              volumes_ok ? "linear" : "NOT LINEAR");

  // --- heterogeneous partition sizing ---------------------------------------
  // Unequal link rates: the second server is an older generation at a
  // quarter of the NVLink lane bandwidth. Bandwidth-weighted sizing must
  // beat the equal split on modeled AllReduce time.
  std::printf("\nheterogeneous 2-server AllReduce, 100 MB, second server at "
              "0.25x NVLink\n");
  auto old_gen = topo::induced_topology(machine, std::vector<int>{3, 4, 5, 6, 7});
  old_gen.nvlink_lane_bw *= 0.25;
  const std::vector<topo::Topology> hetero{
      topo::induced_topology(machine, std::vector<int>{0, 1, 2}), old_gen};
  double seconds[2] = {0.0, 0.0};
  const PartitionSizing sizings[2] = {PartitionSizing::kEqual,
                                      PartitionSizing::kBandwidthWeighted};
  for (int i = 0; i < 2; ++i) {
    ClusterOptions opts;
    opts.partition_sizing = sizings[i];
    // Whole-partition joins: the sizing stagger's win is overlapping the slow
    // server's local phases with the exchange, which chunk pipelining already
    // achieves at chunk granularity — with it on, the two splits tie.
    opts.pipeline = false;
    ClusterCommunicator comm(hetero, opts);
    seconds[i] = comm.all_reduce(100e6).seconds;
    std::printf("%-20s %8.2f ms", to_string(sizings[i]), seconds[i] * 1e3);
    if (sizings[i] == PartitionSizing::kBandwidthWeighted) {
      std::printf("  shares:");
      for (const double s : comm.partition_shares()) std::printf(" %.3f", s);
    }
    std::printf("\n");
  }
  const bool hetero_ok = seconds[1] < seconds[0];
  std::printf("weighted vs equal: %+.1f%% (%s)\n",
              100.0 * (seconds[0] / seconds[1] - 1.0),
              hetero_ok ? "weighted wins" : "EQUAL SPLIT WON");

  // --- heterogeneous per-server NICs ----------------------------------------
  // One server's NIC runs at a quarter rate. The ring start offsets park the
  // slow NIC at the send-once position, so its egress must stay at ~1x the
  // payload while fast servers absorb the double-send offsets; partition
  // sizing folds the NIC rates into the link-rate probes, so the shares tilt
  // away from the slow server.
  std::printf("\nheterogeneous NICs, 4x 4-GPU servers, 64 MB ring AllReduce, "
              "server 2 at 10 Gbps (others 40)\n");
  ClusterOptions nic_opts;
  nic_opts.phase2 = Phase2Policy::kRing;
  nic_opts.fabric.nic_bw = gbitps(40.0);
  nic_opts.fabric.nic_bw_per_server = {gbitps(40.0), gbitps(40.0),
                                       gbitps(10.0), gbitps(40.0)};
  const std::vector<topo::Topology> quad4(4, quad);
  ClusterCommunicator nic_comm(quad4, nic_opts);
  const auto nic_plan = nic_comm.compile(CollectiveKind::kAllReduce, 64e6);
  const int slow_server = 2;
  bool nic_ok = true;
  std::printf("%-8s %14s %10s\n", "server", "egress MB", "share");
  for (int s = 0; s < nic_comm.num_servers(); ++s) {
    const double egress =
        nic_egress_bytes(nic_comm.fabric(), nic_plan->program(), s);
    std::printf("%-8d %14.1f %10.3f\n", s, egress / 1e6,
                nic_comm.partition_shares()[static_cast<std::size_t>(s)]);
    if (s == slow_server && egress > 64e6 * 1.001) nic_ok = false;
  }
  std::printf("slow NIC egress <= 1x payload (send-once ring offset): %s\n",
              nic_ok ? "yes" : "NO -- slow NIC is double-sending");

  return volumes_ok && hetero_ok && nic_ok ? 0 : 1;
}
