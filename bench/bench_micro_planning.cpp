// Planning-path microbenchmarks (google-benchmark): TreeGen runs once per
// job at startup (§2.3), so its own cost — MWU iterations, the ILP, the
// simplex — must stay negligible next to a training run. The paper's
// near-linear-time MWU claim (§3.2) is checked here in wall-clock form.
#include <benchmark/benchmark.h>

#include "blink/blink/communicator.h"
#include "blink/blink/treegen.h"
#include "blink/graph/arborescence.h"
#include "blink/graph/maxflow.h"
#include "blink/packing/packing.h"
#include "blink/sim/executor.h"
#include "blink/blink/codegen.h"
#include "blink/topology/builders.h"

namespace {

using namespace blink;

void BM_MinCostArborescence(benchmark::State& state) {
  const auto g = graph::nvlink_digraph(topo::make_dgx1v());
  std::vector<double> cost(static_cast<std::size_t>(g.num_edges()), 1.0);
  for (std::size_t i = 0; i < cost.size(); ++i) cost[i] = 1.0 + 0.1 * i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::min_cost_arborescence(g, 0, cost));
  }
}
BENCHMARK(BM_MinCostArborescence);

void BM_MaxFlowBound(benchmark::State& state) {
  const auto g = graph::nvlink_digraph(topo::make_dgx1v());
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::broadcast_rate_upper_bound(g, 0));
  }
}
BENCHMARK(BM_MaxFlowBound);

void BM_MwuPack(benchmark::State& state) {
  const auto g = graph::nvlink_digraph(topo::make_dgx1v());
  packing::MwuOptions opts;
  opts.epsilon = 1.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(packing::mwu_pack(g, 0, opts));
  }
}
BENCHMARK(BM_MwuPack)->Arg(5)->Arg(10)->Arg(20)->Arg(50);

void BM_MinimizeTrees(benchmark::State& state) {
  const auto g = graph::nvlink_digraph(topo::make_dgx1v());
  const auto candidates = packing::mwu_pack(g, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(packing::minimize_trees(g, 0, candidates.trees));
  }
}
BENCHMARK(BM_MinimizeTrees);

void BM_TreeGenEndToEnd(benchmark::State& state) {
  const auto machine = topo::make_dgx1v();
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_trees(machine, 0));
  }
}
BENCHMARK(BM_TreeGenEndToEnd);

void BM_SimulateBroadcast(benchmark::State& state) {
  const auto machine = topo::make_dgx1v();
  const sim::Fabric fabric(machine, sim::FabricParams{});
  const auto set = generate_trees(machine, 0);
  const auto trees = route_trees(fabric, 0, set);
  const double bytes = static_cast<double>(state.range(0)) * 1e6;
  for (auto _ : state) {
    ProgramBuilder builder(fabric, CodeGenOptions{});
    builder.broadcast(trees, bytes);
    benchmark::DoNotOptimize(sim::execute(fabric, builder.take()));
  }
  state.SetLabel(std::to_string(state.range(0)) + "MB payload");
}
BENCHMARK(BM_SimulateBroadcast)->Arg(10)->Arg(100)->Arg(500);

// The plan/execute split's two halves: what a cold compile costs (TreeGen +
// CodeGen, paid once per shape) versus a warm compile (an LRU cache hit,
// paid every iteration of a training job).
void BM_CompileCold(benchmark::State& state) {
  const auto machine = topo::make_dgx1v();
  for (auto _ : state) {
    Communicator comm(machine);  // fresh caches: full TreeGen + CodeGen
    benchmark::DoNotOptimize(
        comm.compile(CollectiveKind::kBroadcast, 500e6, 0));
  }
}
BENCHMARK(BM_CompileCold);

void BM_CompileCacheHit(benchmark::State& state) {
  Communicator comm(topo::make_dgx1v());
  comm.compile(CollectiveKind::kBroadcast, 500e6, 0);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        comm.compile(CollectiveKind::kBroadcast, 500e6, 0));
  }
}
BENCHMARK(BM_CompileCacheHit);

void BM_ExecutePlan(benchmark::State& state) {
  CommunicatorOptions opts;
  opts.memoize = false;  // re-run the fabric simulation every time
  Communicator comm(topo::make_dgx1v(), opts);
  const auto plan = comm.compile(CollectiveKind::kBroadcast, 500e6, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(comm.execute(*plan));
  }
}
BENCHMARK(BM_ExecutePlan);

}  // namespace

BENCHMARK_MAIN();
