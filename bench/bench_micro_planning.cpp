// Planning-path microbenchmarks (google-benchmark): TreeGen runs once per
// job at startup (§2.3), so its own cost — MWU iterations, the ILP, the
// simplex — must stay negligible next to a training run. The paper's
// near-linear-time MWU claim (§3.2) is checked here in wall-clock form.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "blink/blink/communicator.h"
#include "blink/blink/plan_io.h"
#include "blink/blink/treegen.h"
#include "blink/graph/arborescence.h"
#include "blink/graph/maxflow.h"
#include "blink/packing/packing.h"
#include "blink/sim/executor.h"
#include "blink/blink/codegen.h"
#include "blink/topology/builders.h"

namespace {

using namespace blink;

void BM_MinCostArborescence(benchmark::State& state) {
  const auto g = graph::nvlink_digraph(topo::make_dgx1v());
  std::vector<double> cost(static_cast<std::size_t>(g.num_edges()), 1.0);
  for (std::size_t i = 0; i < cost.size(); ++i) cost[i] = 1.0 + 0.1 * i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::min_cost_arborescence(g, 0, cost));
  }
}
BENCHMARK(BM_MinCostArborescence);

void BM_MaxFlowBound(benchmark::State& state) {
  const auto g = graph::nvlink_digraph(topo::make_dgx1v());
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::broadcast_rate_upper_bound(g, 0));
  }
}
BENCHMARK(BM_MaxFlowBound);

void BM_MwuPack(benchmark::State& state) {
  const auto g = graph::nvlink_digraph(topo::make_dgx1v());
  packing::MwuOptions opts;
  opts.epsilon = 1.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(packing::mwu_pack(g, 0, opts));
  }
}
BENCHMARK(BM_MwuPack)->Arg(5)->Arg(10)->Arg(20)->Arg(50);

void BM_MinimizeTrees(benchmark::State& state) {
  const auto g = graph::nvlink_digraph(topo::make_dgx1v());
  const auto candidates = packing::mwu_pack(g, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(packing::minimize_trees(g, 0, candidates.trees));
  }
}
BENCHMARK(BM_MinimizeTrees);

void BM_TreeGenEndToEnd(benchmark::State& state) {
  const auto machine = topo::make_dgx1v();
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_trees(machine, 0));
  }
}
BENCHMARK(BM_TreeGenEndToEnd);

void BM_SimulateBroadcast(benchmark::State& state) {
  const auto machine = topo::make_dgx1v();
  const sim::Fabric fabric(machine, sim::FabricParams{});
  const auto set = generate_trees(machine, 0);
  const auto trees = route_trees(fabric, 0, set);
  const double bytes = static_cast<double>(state.range(0)) * 1e6;
  for (auto _ : state) {
    ProgramBuilder builder(fabric, CodeGenOptions{});
    builder.broadcast(trees, bytes);
    benchmark::DoNotOptimize(sim::execute(fabric, builder.take()));
  }
  state.SetLabel(std::to_string(state.range(0)) + "MB payload");
}
BENCHMARK(BM_SimulateBroadcast)->Arg(10)->Arg(100)->Arg(500);

// The plan/execute split's two halves: what a cold compile costs (TreeGen +
// CodeGen, paid once per shape) versus a warm compile (an LRU cache hit,
// paid every iteration of a training job).
void BM_CompileCold(benchmark::State& state) {
  const auto machine = topo::make_dgx1v();
  for (auto _ : state) {
    Communicator comm(machine);  // fresh caches: full TreeGen + CodeGen
    benchmark::DoNotOptimize(
        comm.compile(CollectiveKind::kBroadcast, 500e6, 0));
  }
  // items/sec is cold plans per second — the planner's throughput unit,
  // comparable directly against BM_CompileColdParallel below.
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompileCold);

// Cold-compile throughput under concurrent clients: every thread compiles a
// stream of distinct shapes against one shared communicator, so each compile
// is a cache miss on its own plan key and the engine's per-key single-flight
// admits them all concurrently. items/sec at --benchmark_min_time growth
// over the 1-thread row is the planner-pool speedup (bounded by cores; on a
// single-core host the rows collapse to serial throughput).
void BM_CompileColdParallel(benchmark::State& state) {
  static Communicator* comm = nullptr;
  static std::atomic<std::uint64_t> next_shape{0};
  if (state.thread_index() == 0) {
    comm = new Communicator(topo::make_dgx1v());
  }
  for (auto _ : state) {
    // Distinct bytes per compile: always cold, never single-flight-merged.
    const double bytes =
        1e6 + 4096.0 * static_cast<double>(next_shape.fetch_add(1));
    benchmark::DoNotOptimize(
        comm->compile(CollectiveKind::kBroadcast, bytes, 0));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete comm;
    comm = nullptr;
  }
}
BENCHMARK(BM_CompileColdParallel)->ThreadRange(1, 8)->UseRealTime();

void BM_CompileCacheHit(benchmark::State& state) {
  Communicator comm(topo::make_dgx1v());
  comm.compile(CollectiveKind::kBroadcast, 500e6, 0);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        comm.compile(CollectiveKind::kBroadcast, 500e6, 0));
  }
}
BENCHMARK(BM_CompileCacheHit);

void BM_ExecutePlan(benchmark::State& state) {
  CommunicatorOptions opts;
  opts.memoize = false;  // re-run the fabric simulation every time
  Communicator comm(topo::make_dgx1v(), opts);
  const auto plan = comm.compile(CollectiveKind::kBroadcast, 500e6, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(comm.execute(*plan));
  }
}
BENCHMARK(BM_ExecutePlan);

// Compiling against a warm persistent plan store: every shape is a cache
// hit loaded from disk, never TreeGen/CodeGen.
void BM_CompileWarmStore(benchmark::State& state) {
  const auto tmp =
      std::filesystem::temp_directory_path() / "blink-bench-plan-store";
  std::filesystem::create_directories(tmp);
  CommunicatorOptions opts;
  opts.plan_store_dir = tmp.string();
  {
    Communicator comm(topo::make_dgx1v(), opts);  // cold: compile + flush
    comm.compile(CollectiveKind::kBroadcast, 500e6, 0);
  }
  for (auto _ : state) {
    Communicator comm(topo::make_dgx1v(), opts);
    benchmark::DoNotOptimize(
        comm.compile(CollectiveKind::kBroadcast, 500e6, 0));
    if (comm.plan_cache().misses() != 0) {
      state.SkipWithError("warm store compile recompiled");
    }
  }
  std::filesystem::remove_all(tmp);
}
BENCHMARK(BM_CompileWarmStore);

// The fig18-style zero-recompile check, across real process boundaries:
// when BLINK_PLAN_CACHE_DIR is set, compile a model-sized shape mix against
// that store. On a cold start (no store file yet) the plans are compiled
// and flushed at exit; on a warm start (the previous run's file exists)
// every compile must be a hit — a single TreeGen/CodeGen recompile exits
// nonzero, so `bench_micro_planning` run twice with a shared dir proves
// that schedules survive process restarts.
int plan_store_warm_start_check() {
  const char* dir = std::getenv("BLINK_PLAN_CACHE_DIR");
  if (dir == nullptr || *dir == '\0') return 0;
  CommunicatorOptions opts;
  opts.codegen.chunk_bytes = 4u << 20;
  opts.plan_store_dir = dir;
  Communicator comm(topo::make_dgx1v(), opts);
  const bool warm = std::filesystem::exists(comm.plan_store_path());
  comm.all_reduce(400e6);   // AlexNet-scale gradient exchange
  comm.all_reduce(100e6);
  comm.broadcast(200e6, 0);
  const auto misses = comm.plan_cache().misses();
  const auto hits = comm.plan_cache().hits();
  if (warm && misses != 0) {
    std::fprintf(stderr,
                 "FAIL: warm start from %s recompiled %llu plans "
                 "(expected every compile to hit the loaded store)\n",
                 dir, static_cast<unsigned long long>(misses));
    return 1;
  }
  std::printf("plan store %s start: %llu compiles, %llu hits (%s)\n",
              warm ? "warm" : "cold", static_cast<unsigned long long>(misses),
              static_cast<unsigned long long>(hits), dir);
  return 0;
}

// The parallel-planning gate, in exit-code form: compile 16 distinct shapes
// twice — once on a serial planner (planner_threads = 1, one client thread)
// and once on the full pool (default width, 8 client threads) — then require
// (a) every parallel-compiled program to be bit-identical to its serial
// twin (parallelism is a pure speed knob, §3.2's plans don't change), and
// (b) a core-scaled cold-compile speedup: >= 4x on hosts with 8+ cores,
// >= 0.45x-per-core below that. On a single-core host the speedup check is
// skipped (there is nothing to parallelize onto) but the bit-identity check
// still runs.
int parallel_compile_gate() {
  const auto machine = topo::make_dgx1v();
  constexpr int kShapes = 16;
  const auto shape_bytes = [](int i) { return 8e6 * (i + 1); };
  const auto shape_kind = [](int i) {
    return i % 2 == 0 ? CollectiveKind::kBroadcast
                      : CollectiveKind::kAllReduce;
  };

  // Compiles every shape with |client_threads| racing clients and returns
  // the wall-clock seconds; |blobs| gets each shape's serialized program.
  const auto run = [&](int planner_threads, int client_threads,
                       std::vector<std::string>* blobs) {
    CommunicatorOptions opts;
    opts.planner_threads = planner_threads;
    Communicator comm(machine, opts);
    blobs->assign(kShapes, {});
    std::atomic<int> next{0};
    const auto worker = [&] {
      for (int i = next.fetch_add(1); i < kShapes; i = next.fetch_add(1)) {
        const auto plan = comm.compile(shape_kind(i), shape_bytes(i), 0);
        serialize_program(plan->program(), &(*blobs)[i]);
      }
    };
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (int t = 1; t < client_threads; ++t) clients.emplace_back(worker);
    worker();
    for (auto& c : clients) c.join();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  std::vector<std::string> serial_blobs;
  std::vector<std::string> parallel_blobs;
  const double serial_s = run(/*planner_threads=*/1, /*client_threads=*/1,
                              &serial_blobs);
  const double parallel_s = run(/*planner_threads=*/0, /*client_threads=*/8,
                                &parallel_blobs);

  for (int i = 0; i < kShapes; ++i) {
    if (serial_blobs[i].empty() || serial_blobs[i] != parallel_blobs[i]) {
      std::fprintf(stderr,
                   "FAIL: parallel-compiled plan for shape %d differs from "
                   "the serial compile (parallel planning must be "
                   "bit-identical)\n",
                   i);
      return 1;
    }
  }

  const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf(
      "parallel planning gate: %d shapes, serial %.3f s, parallel %.3f s "
      "(%.2fx, %u cores), plans bit-identical\n",
      kShapes, serial_s, parallel_s, speedup, cores);
  if (cores <= 1) {
    std::printf("SKIP: single-core host, parallel speedup not enforced\n");
    return 0;
  }
  const double required = std::min(4.0, 0.45 * static_cast<double>(cores));
  if (speedup < required) {
    std::fprintf(stderr,
                 "FAIL: parallel cold-compile speedup %.2fx < required "
                 "%.2fx on %u cores\n",
                 speedup, required, cores);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (const int rc = parallel_compile_gate(); rc != 0) return rc;
  return plan_store_warm_start_check();
}
