// Figure 12 (§4.2.1): MIAD automatic chunk-size selection on a 4-GPU
// broadcast — chunk size doubles while throughput improves, then settles.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace blink;
  bench::banner("Figure 12",
                "MIAD chunk-size selection, 4-GPU DGX-1V broadcast");
  const auto machine = topo::make_dgx1v();
  const auto topo =
      topo::induced_topology(machine, std::vector<int>{0, 1, 2, 3});
  Communicator comm(topo);

  const auto result =
      comm.tune_chunk_size(CollectiveKind::kBroadcast, 500e6, 0);
  std::printf("%-10s %12s %14s\n", "iteration", "chunk (MB)",
              "throughput GB/s");
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    std::printf("%-10zu %12.1f %14.1f\n", i + 1,
                static_cast<double>(result.trace[i].chunk_bytes) / 1e6,
                result.trace[i].throughput / 1e9);
  }
  std::printf("\nselected chunk: %.1f MB at %.1f GB/s\n",
              static_cast<double>(result.selected_chunk) / 1e6,
              result.selected_throughput / 1e9);
  std::printf("paper: starts at 1MB, multiplies 2x per iteration, "
              "stabilizes after ~4 iterations.\n");

  // Tuning primes the plan cache: the tuned schedule is already compiled, so
  // the training loop's first broadcast at this shape skips planning.
  const auto plan = comm.compile(CollectiveKind::kBroadcast, 500e6, 0);
  std::printf("tuned plan cached: chunk %.1f MB, %d trees, %d ops "
              "(%llu cache hit%s)\n",
              static_cast<double>(plan->chunk_bytes()) / 1e6,
              plan->num_trees(), plan->num_ops(),
              static_cast<unsigned long long>(comm.plan_cache().hits()),
              comm.plan_cache().hits() == 1 ? "" : "s");
  return comm.plan_cache().hits() > 0 ? 0 : 1;
}
