// Figure 21 (§5.3): hybrid PCIe+NVLink broadcast vs NVLink-only, 3-8 GPUs
// on a DGX-1V. The paper reports a 2-5 GB/s gain that shrinks with GPU
// count because disable_peer_access switching costs grow.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace blink;
  bench::banner("Figure 21",
                "Hybrid vs NVLink-only broadcast throughput (GB/s), DGX-1V");
  const auto machine = topo::make_dgx1v();
  // The first fully NVLink-connected representative per size.
  const std::vector<std::vector<int>> allocs{
      {0, 1, 2},          {0, 1, 2, 3},          {0, 1, 2, 3, 4},
      {0, 1, 2, 3, 4, 5}, {0, 1, 2, 3, 4, 5, 6}, {0, 1, 2, 3, 4, 5, 6, 7}};

  std::printf("%-8s %14s %14s %10s\n", "#GPUs", "NVLink-only",
              "PCIe+NVLink", "gain");
  std::vector<double> gains;
  for (const auto& alloc : allocs) {
    const auto topo = topo::induced_topology(machine, alloc);
    CommunicatorOptions hybrid_opts;
    hybrid_opts.hybrid = true;
    Communicator base(topo);
    Communicator hybrid(topo, hybrid_opts);
    const double bytes = 8e9;  // large payload, where hybrid pays off
    const double bw0 = base.broadcast(bytes, 0).algorithm_bw;
    const double bw1 = hybrid.broadcast(bytes, 0).algorithm_bw;
    gains.push_back((bw1 - bw0) / 1e9);
    std::printf("%-8zu %14.1f %14.1f %8.1f\n", alloc.size(), bw0 / 1e9,
                bw1 / 1e9, gains.back());
  }
  std::printf("\npaper: +5 GB/s at 3-4 GPUs shrinking to +2 GB/s at 7-8 "
              "(peer-access switch cost grows with GPU count).\n");
  return 0;
}
