// Ablation: MWU epsilon vs packing quality, iteration count and tree count
// (DESIGN.md §5). Smaller epsilon -> more iterations, tighter rate, more
// candidate trees for the ILP to prune.
#include <cstdio>

#include "bench_common.h"
#include "blink/packing/packing.h"

int main() {
  using namespace blink;
  bench::banner("Ablation", "MWU epsilon sweep on the full DGX-1V, root 0");
  const auto g = graph::nvlink_digraph(topo::make_dgx1v());
  const double optimal = packing::optimal_rate(g, 0);

  std::printf("%-8s %12s %12s %12s %12s\n", "epsilon", "iterations",
              "MWU trees", "rate/opt", "final trees");
  for (const double eps : {0.5, 0.3, 0.2, 0.1, 0.05, 0.02}) {
    packing::MwuOptions opts;
    opts.epsilon = eps;
    const auto packed = packing::mwu_pack(g, 0, opts);
    const auto minimized = packing::minimize_trees(g, 0, packed.trees);
    std::printf("%-8.2f %12d %12zu %11.1f%% %12zu\n", eps, packed.iterations,
                packed.trees.size(), 100.0 * packed.total_rate / optimal,
                minimized.trees.size());
  }
  std::printf("\nexpected: rate/opt rises toward 100%% as epsilon shrinks; "
              "the ILP stage always recovers ~6 trees.\n");
  return 0;
}
