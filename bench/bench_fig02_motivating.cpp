// Figure 2: the motivating broadcast comparison on a DGX-1P.
//   (a) fully connected 3 GPUs {0,1,3}: NCCL 43.6 vs Blink 48.4 GB/s
//   (b) partially connected {0,1,4}: NCCL 4.8 (PCIe) vs Blink 26.4 GB/s
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace blink;
  bench::banner("Figure 2", "Broadcast from GPU 0 on a DGX-1P (GB/s)");
  const auto machine = topo::make_dgx1p();

  struct Case {
    const char* name;
    std::vector<int> gpus;
    double paper_nccl;
    double paper_blink;
  };
  const std::vector<Case> cases{
      {"(a) fully connected {0,1,3}", {0, 1, 3}, 43.6, 48.4},
      {"(b) partially connected {0,1,4}", {0, 1, 4}, 4.8, 26.4},
  };

  for (const auto& c : cases) {
    const auto topo = topo::induced_topology(machine, c.gpus);
    Communicator blink_comm(topo);
    baselines::NcclCommunicator nccl(topo);
    const double nccl_bw = nccl.broadcast(500e6, 0).algorithm_bw / 1e9;
    const double blink_bw = blink_comm.broadcast(500e6, 0).algorithm_bw / 1e9;
    std::printf("%s\n", c.name);
    std::printf("  NCCL2: %6.1f GB/s (paper %5.1f)    Blink: %6.1f GB/s "
                "(paper %5.1f)\n",
                nccl_bw, c.paper_nccl, blink_bw, c.paper_blink);
  }
  return 0;
}
