// Figure 3: per-server GPU counts for 40,000 multi-GPU jobs on a
// multi-tenant cluster ("Cloud-X"). Regenerated from the synthetic scheduler
// in src/cluster: powers-of-two requests + first-fit placement with
// cross-server splitting produce the 3/5/6/7-GPU fragments the paper
// highlights.
#include <cstdio>

#include "bench_common.h"
#include "blink/cluster/scheduler.h"

int main() {
  using namespace blink;
  bench::banner("Figure 3",
                "Per-server allocation sizes of 40k multi-GPU jobs (%)");
  cluster::SchedulerConfig config;
  config.num_jobs = 40000;
  Rng rng(20200304);  // fixed seed, printed for reproducibility
  const auto stats = cluster::simulate_cluster(config, rng);

  std::printf("seed=20200304 servers=%d multi-GPU jobs=%ld fragmented=%ld\n\n",
              config.num_servers, stats.multi_gpu_jobs,
              stats.fragmented_jobs);
  std::printf("%-6s %10s   histogram\n", "#GPUs", "share");
  for (int k = 2; k <= config.gpus_per_server; ++k) {
    const double pct = stats.percent(k);
    std::printf("%-6d %9.1f%%   ", k, pct);
    for (int i = 0; i < static_cast<int>(pct); ++i) std::printf("#");
    std::printf("\n");
  }
  std::printf("\npaper: peaks at 2/4/8 GPUs with substantial 3/5/6/7-GPU "
              "fragments despite power-of-two requests.\n");
  return 0;
}
