// Figure 24 (Appendix A.1): chain depth tests over 3-8 GPUs for the three
// traffic patterns — forward, reduce+forward, reduce-broadcast — across
// payload sizes 1 MB to 1000 MB.
#include <cstdio>

#include "bench_common.h"
#include "blink/sim/executor.h"

namespace {

using namespace blink;

enum class Pattern { kForward, kReduceForward, kReduceBroadcast };

double run_chain(int n, Pattern pattern, double bytes) {
  const auto topo = topo::make_chain(n);
  const sim::Fabric fabric(topo, sim::FabricParams{});
  const auto set = generate_trees(topo, 0);
  const auto trees = route_trees(fabric, 0, set);
  ProgramBuilder builder(fabric, CodeGenOptions{});
  switch (pattern) {
    case Pattern::kForward:
      builder.broadcast(trees, bytes);
      break;
    case Pattern::kReduceForward:
      builder.reduce(trees, bytes);
      break;
    case Pattern::kReduceBroadcast:
      builder.all_reduce(trees, bytes);
      break;
  }
  const auto run = sim::execute(fabric, builder.take());
  return bytes / run.makespan;
}

void table(const char* name, Pattern pattern) {
  std::printf("--- %s ---\n", name);
  std::printf("%-8s", "#GPUs");
  const std::vector<double> sizes{1e6, 5e6, 10e6, 50e6, 100e6, 500e6, 1000e6};
  for (const double s : sizes) std::printf(" %7.0fMB", s / 1e6);
  std::printf("\n");
  for (int n = 3; n <= 8; ++n) {
    std::printf("%-8d", n);
    for (const double s : sizes) {
      std::printf(" %9.1f", run_chain(n, pattern, s) / 1e9);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::banner("Figure 24",
                "Chain depth tests (GB/s), V100 lanes, 1MB-1000MB");
  table("forward", Pattern::kForward);
  table("reduce+forward", Pattern::kReduceForward);
  table("reduce-broadcast", Pattern::kReduceBroadcast);
  std::printf("\npaper: forward ~22 GB/s falling to ~20 GB/s with depth; "
              "reduce+forward ~18-21; reduce-broadcast ~16-19; all collapse "
              "at small sizes.\n");
  return 0;
}
