// Ablation: stream reuse (§4.2.2) and chunk size (§4.2.1) on a topology
// where several trees share links. On real CUDA hardware disabling reuse
// causes unfair link sharing; in the fluid simulator sharing is always fair,
// so the residual difference isolates the scheduling-granularity effect.
#include <cstdio>

#include "bench_common.h"
#include "blink/sim/executor.h"

int main() {
  using namespace blink;
  bench::banner("Ablation", "Stream reuse and chunk size, DGX-1V broadcast");
  const auto machine = topo::make_dgx1v();
  const auto topo = topo::induced_topology(
      machine, std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7});
  const sim::Fabric fabric(topo, sim::FabricParams{});
  const auto set = generate_trees(topo, 0);
  const auto trees = route_trees(fabric, 0, set);

  std::printf("%-12s %14s %14s %12s\n", "chunk", "reuse on", "reuse off",
              "streams on/off");
  for (const std::uint64_t chunk :
       {1ull << 20, 4ull << 20, 16ull << 20, 64ull << 20}) {
    double bw[2];
    int streams[2];
    for (const bool reuse : {true, false}) {
      CodeGenOptions opts;
      opts.chunk_bytes = chunk;
      opts.stream_reuse = reuse;
      ProgramBuilder builder(fabric, opts);
      builder.broadcast(trees, 500e6);
      const auto program = builder.take();
      streams[reuse ? 0 : 1] = program.num_streams();
      bw[reuse ? 0 : 1] = sim::execute(fabric, program).throughput(500e6);
    }
    std::printf("%8lluMiB %12.1f %14.1f %8d/%d\n",
                static_cast<unsigned long long>(chunk >> 20), bw[0] / 1e9,
                bw[1] / 1e9, streams[0], streams[1]);
  }
  return 0;
}
