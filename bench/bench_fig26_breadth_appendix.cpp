// Figure 26 (Appendix A.1): breadth tests — fan-in forward, fan-in
// reduce+forward, and fan-out forward with 1-3 source/destination GPUs,
// payloads 1 MB - 1000 MB (fan-in/out degree is capped at 3 on DGX-1s).
#include <cstdio>

#include "bench_common.h"
#include "blink/sim/executor.h"

namespace {

using namespace blink;

// Center GPU 4 collects from `degree` sources and forwards to GPU 5.
double fan_in(int degree, bool reduce, double bytes) {
  const auto topo = topo::make_clique(6);
  const sim::Fabric fabric(topo, sim::FabricParams{});
  ProgramBuilder builder(fabric, CodeGenOptions{});
  const int chunks = builder.chunks_for(bytes);
  const double chunk = bytes / chunks;
  std::vector<std::vector<int>> arrivals(
      static_cast<std::size_t>(chunks));
  for (int src = 0; src < degree; ++src) {
    const auto route = fabric.nvlink_route(0, src, 4);
    const auto done = builder.copy_chunks(route, bytes, chunks, src);
    for (int c = 0; c < chunks; ++c) {
      arrivals[static_cast<std::size_t>(c)].push_back(
          done[static_cast<std::size_t>(c)]);
    }
  }
  const auto out = fabric.nvlink_route(0, 4, 5);
  for (int c = 0; c < chunks; ++c) {
    std::vector<int> gate;
    if (reduce) {
      gate.push_back(builder.reduce_kernel(
          0, 4, chunk * (degree + 1), arrivals[static_cast<std::size_t>(c)]));
    } else {
      gate.push_back(builder.delay(0.0, "join",
                                   arrivals[static_cast<std::size_t>(c)]));
    }
    builder.copy_chunks(out, reduce ? chunk : chunk * degree, 1, 99, gate);
  }
  const auto run = sim::execute(fabric, builder.take());
  return bytes / run.makespan;
}

// GPU 5 sends its buffer to `degree` destinations (multicast).
double fan_out(int degree, double bytes) {
  const auto topo = topo::make_clique(6);
  const sim::Fabric fabric(topo, sim::FabricParams{});
  ProgramBuilder builder(fabric, CodeGenOptions{});
  const int chunks = builder.chunks_for(bytes);
  for (int dst = 0; dst < degree; ++dst) {
    builder.copy_chunks(fabric.nvlink_route(0, 5, dst), bytes, chunks, dst);
  }
  const auto run = sim::execute(fabric, builder.take());
  return bytes / run.makespan;
}

void table(const char* name, const std::function<double(int, double)>& fn) {
  std::printf("--- %s ---\n", name);
  std::printf("%-8s", "degree");
  const std::vector<double> sizes{1e6, 10e6, 100e6, 1000e6};
  for (const double s : sizes) std::printf(" %7.0fMB", s / 1e6);
  std::printf("\n");
  for (int d = 1; d <= 3; ++d) {
    std::printf("%-8d", d);
    for (const double s : sizes) std::printf(" %9.1f", fn(d, s) / 1e9);
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::banner("Figure 26", "Breadth tests (GB/s), fan-in/fan-out <= 3");
  table("fan-in forward",
        [](int d, double s) { return fan_in(d, false, s); });
  table("fan-in reduce+forward",
        [](int d, double s) { return fan_in(d, true, s); });
  table("fan-out forward", [](int d, double s) { return fan_out(d, s); });
  std::printf("\npaper: near lane rate for >= 50MB; reduce+forward 1-2 GB/s "
              "below plain forward.\n");
  return 0;
}
