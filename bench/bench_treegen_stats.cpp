// §3.2/§3.2.1 statistics: MWU tree counts vs ILP-minimized counts and rates
// for every root on the full DGX-1V, plus the chunk-size consequence the
// paper quotes (181 trees -> 6 trees; 1000 MB split 0.33-148 MB -> 166 MB).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace blink;
  bench::banner("TreeGen stats",
                "MWU tree explosion and ILP minimization (§3.2)");
  const auto machine = topo::make_dgx1v();

  std::printf("%-6s %10s %10s %14s %14s %10s\n", "root", "MWU trees",
              "ILP trees", "rate (GB/s)", "optimal", "stage");
  for (int root = 0; root < machine.num_gpus; ++root) {
    const auto set = generate_trees(machine, root);
    std::printf("%-6d %10d %10zu %14.1f %14.1f %10s\n", root,
                set.mwu_tree_count, set.trees.size(), set.rate / 1e9,
                set.optimal_rate / 1e9,
                set.stage == packing::MinimizeStage::kIlp ? "ILP"
                                                          : "relaxed");
  }

  // Per-tree transfer sizes for a 1000 MB broadcast (paper: equal 166 MB
  // shares after the ILP vs 0.33-148 MB without).
  const auto minimized = generate_trees(machine, 0);
  TreeGenOptions raw_opts;
  raw_opts.minimize = false;
  const auto raw = generate_trees(machine, 0, raw_opts);
  auto share_range = [](const TreeSet& set) {
    double total = 0.0;
    for (const auto& t : set.trees) total += t.weight;
    double lo = 1e18;
    double hi = 0.0;
    for (const auto& t : set.trees) {
      const double bytes = 1000e6 * t.weight / total;
      lo = std::min(lo, bytes);
      hi = std::max(hi, bytes);
    }
    return std::make_pair(lo, hi);
  };
  const auto [min_lo, min_hi] = share_range(minimized);
  const auto [raw_lo, raw_hi] = share_range(raw);
  std::printf("\n1000MB broadcast per-tree shares:\n");
  std::printf("  raw MWU   (%3zu trees): %7.2f - %7.2f MB  (paper: 0.33 - "
              "148 MB over 181 trees)\n",
              raw.trees.size(), raw_lo / 1e6, raw_hi / 1e6);
  std::printf("  minimized (%3zu trees): %7.2f - %7.2f MB  (paper: 166 MB "
              "each over 6 trees)\n",
              minimized.trees.size(), min_lo / 1e6, min_hi / 1e6);
  return 0;
}
