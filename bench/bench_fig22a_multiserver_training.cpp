// Figure 22a (§5.4): two-server training (3+5 GPU fragmentation across two
// DGX-1Vs, 40 Gbps NIC): images/second under the NCCL-like global ring vs
// Blink's three-phase AllReduce. The paper reports up to 11% gains.
#include <cstdio>

#include "bench_common.h"
#include "blink/blink/multiserver.h"
#include "blink/common/units.h"
#include "blink/dnn/training.h"

int main() {
  using namespace blink;
  bench::banner("Figure 22a",
                "2x DGX-1V (3+5 GPUs), 40 Gbps: training images/second");
  const auto machine = topo::make_dgx1v();
  const std::vector<topo::Topology> servers{
      topo::induced_topology(machine, std::vector<int>{0, 1, 2}),
      topo::induced_topology(machine, std::vector<int>{3, 4, 5, 6, 7})};

  ClusterOptions blink_opts;
  blink_opts.fabric.nic_bw = gbitps(40.0);
  ClusterCommunicator blink_cluster(servers, blink_opts);
  baselines::NcclOptions nccl_opts;
  nccl_opts.fabric.nic_bw = gbitps(40.0);

  std::printf("%-10s %12s %12s %8s\n", "model", "NCCL img/s", "Blink img/s",
              "gain");
  dnn::TrainingOptions train;
  train.num_gpus = 8;
  constexpr int kIterations = 5;  // a short training job per model
  std::uint64_t cold_compiles = 0;
  std::uint64_t warm_compiles = 0;
  for (const auto& model : dnn::model_zoo()) {
    const auto nccl_it = dnn::simulate_iteration(
        model, dnn::GpuGeneration::kV100,
        [&](double b) {
          return baselines::multi_server_ring_all_reduce(servers, b,
                                                         nccl_opts)
              .seconds;
        },
        train);
    // The plan/execute split: iteration 1 compiles the three-phase schedule
    // per gradient-bucket size; later iterations reuse the cached plans.
    const auto run_blink_iteration = [&] {
      return dnn::simulate_iteration(
          model, dnn::GpuGeneration::kV100,
          [&](double b) {
            return blink_cluster
                .execute(*blink_cluster.compile(CollectiveKind::kAllReduce, b))
                .seconds;
          },
          train);
    };
    const std::uint64_t misses0 = blink_cluster.plan_cache().misses();
    const auto blink_it = run_blink_iteration();
    cold_compiles += blink_cluster.plan_cache().misses() - misses0;
    const std::uint64_t misses1 = blink_cluster.plan_cache().misses();
    for (int it = 1; it < kIterations; ++it) run_blink_iteration();
    warm_compiles += blink_cluster.plan_cache().misses() - misses1;
    std::printf("%-10s %12.0f %12.0f %7.1f%%\n", model.name.c_str(),
                nccl_it.images_per_second, blink_it.images_per_second,
                100.0 * (blink_it.images_per_second /
                             nccl_it.images_per_second -
                         1.0));
  }
  std::printf("\npaper: up to 11%% more images/second (gains capped by the "
              "slow cross-machine link).\n");
  std::printf("plan reuse: %llu three-phase schedules compiled cold, %llu "
              "recompiled across iterations 2-%d\n",
              static_cast<unsigned long long>(cold_compiles),
              static_cast<unsigned long long>(warm_compiles), kIterations);
  // The exchange the auto-tuner settled on for a representative gradient
  // bucket (partition shares come from the same link-rate probes).
  const auto sample = blink_cluster.compile(CollectiveKind::kAllReduce, 25e6);
  std::printf("phase-2 exchange for 25 MB buckets: %s; partition shares:",
              to_string(sample->phase2_strategy()));
  for (const double s : blink_cluster.partition_shares()) {
    std::printf(" %.3f", s);
  }
  std::printf("\npipeline depth %d; chunk ops per phase: %d local-reduce, "
              "%d nic, %d local-broadcast\n",
              sample->meta().pipeline_depth, sample->meta().phase1_chunks,
              sample->meta().phase2_chunks, sample->meta().phase3_chunks);

  // The makespan-regression gate: cross-phase chunk pipelining must never
  // lose to the whole-partition joins, and on a multi-chunk ring over four
  // servers — where hops can store-and-forward chunk by chunk — it must
  // strictly win. CI runs this binary and fails on a nonzero exit.
  std::printf("\nchunk pipelining off vs on (4x 4-GPU servers, 64 MB "
              "AllReduce):\n%-14s %14s %14s %10s\n", "phase-2", "off (ms)",
              "on (ms)", "speedup");
  const auto quad = topo::induced_topology(machine,
                                           std::vector<int>{4, 5, 6, 7});
  const std::vector<topo::Topology> quad4(4, quad);
  bool pipeline_ok = true;
  for (const Phase2Policy policy :
       {Phase2Policy::kAllToAll, Phase2Policy::kRing,
        Phase2Policy::kHierarchical}) {
    ClusterOptions off_opts, on_opts;
    off_opts.fabric.nic_bw = on_opts.fabric.nic_bw = gbitps(40.0);
    off_opts.phase2 = on_opts.phase2 = policy;
    off_opts.pipeline = false;
    ClusterCommunicator off(quad4, off_opts);
    ClusterCommunicator on(quad4, on_opts);
    const double off_s = off.all_reduce(64e6).seconds;
    const double on_s = on.all_reduce(64e6).seconds;
    const bool never_worse = on_s <= off_s * 1.001;
    // The ring's serial hop chain is where per-chunk store-and-forward has
    // the most to overlap: demand a strict win there, not just parity.
    const bool floor_met =
        policy != Phase2Policy::kRing || on_s < off_s * 0.999;
    pipeline_ok = pipeline_ok && never_worse && floor_met;
    std::printf("%-14s %14.3f %14.3f %9.2fx%s\n", to_string(policy),
                off_s * 1e3, on_s * 1e3, off_s / on_s,
                never_worse && floor_met ? "" : "  REGRESSION");
  }
  return warm_compiles == 0 && pipeline_ok ? 0 : 1;
}
