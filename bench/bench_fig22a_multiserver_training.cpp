// Figure 22a (§5.4): two-server training (3+5 GPU fragmentation across two
// DGX-1Vs, 40 Gbps NIC): images/second under the NCCL-like global ring vs
// Blink's three-phase AllReduce. The paper reports up to 11% gains.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "blink/blink/multiserver.h"
#include "blink/common/units.h"
#include "blink/dnn/training.h"

int main() {
  using namespace blink;
  bench::banner("Figure 22a",
                "2x DGX-1V (3+5 GPUs), 40 Gbps: training images/second");
  const auto machine = topo::make_dgx1v();
  const std::vector<topo::Topology> servers{
      topo::induced_topology(machine, std::vector<int>{0, 1, 2}),
      topo::induced_topology(machine, std::vector<int>{3, 4, 5, 6, 7})};

  ClusterOptions blink_opts;
  blink_opts.fabric.nic_bw = gbitps(40.0);
  ClusterCommunicator blink_cluster(servers, blink_opts);
  baselines::NcclOptions nccl_opts;
  nccl_opts.fabric.nic_bw = gbitps(40.0);

  std::printf("%-10s %12s %12s %8s\n", "model", "NCCL img/s", "Blink img/s",
              "gain");
  dnn::TrainingOptions train;
  train.num_gpus = 8;
  constexpr int kIterations = 5;  // a short training job per model
  std::uint64_t cold_compiles = 0;
  std::uint64_t warm_compiles = 0;
  for (const auto& model : dnn::model_zoo()) {
    const auto nccl_it = dnn::simulate_iteration(
        model, dnn::GpuGeneration::kV100,
        [&](double b) {
          return baselines::multi_server_ring_all_reduce(servers, b,
                                                         nccl_opts)
              .seconds;
        },
        train);
    // The plan/execute split: iteration 1 compiles the three-phase schedule
    // per gradient-bucket size; later iterations reuse the cached plans.
    const auto run_blink_iteration = [&] {
      return dnn::simulate_iteration(
          model, dnn::GpuGeneration::kV100,
          [&](double b) {
            return blink_cluster
                .execute(*blink_cluster.compile(CollectiveKind::kAllReduce, b))
                .seconds;
          },
          train);
    };
    const std::uint64_t misses0 = blink_cluster.plan_cache().misses();
    const auto blink_it = run_blink_iteration();
    cold_compiles += blink_cluster.plan_cache().misses() - misses0;
    const std::uint64_t misses1 = blink_cluster.plan_cache().misses();
    for (int it = 1; it < kIterations; ++it) run_blink_iteration();
    warm_compiles += blink_cluster.plan_cache().misses() - misses1;
    std::printf("%-10s %12.0f %12.0f %7.1f%%\n", model.name.c_str(),
                nccl_it.images_per_second, blink_it.images_per_second,
                100.0 * (blink_it.images_per_second /
                             nccl_it.images_per_second -
                         1.0));
  }
  std::printf("\npaper: up to 11%% more images/second (gains capped by the "
              "slow cross-machine link).\n");
  std::printf("plan reuse: %llu three-phase schedules compiled cold, %llu "
              "recompiled across iterations 2-%d\n",
              static_cast<unsigned long long>(cold_compiles),
              static_cast<unsigned long long>(warm_compiles), kIterations);
  // The exchange the auto-tuner settled on for a representative gradient
  // bucket (partition shares come from the same link-rate probes).
  const auto sample = blink_cluster.compile(CollectiveKind::kAllReduce, 25e6);
  std::printf("phase-2 exchange for 25 MB buckets: %s; partition shares:",
              to_string(sample->phase2_strategy()));
  for (const double s : blink_cluster.partition_shares()) {
    std::printf(" %.3f", s);
  }
  std::printf("\npipeline depth %d; chunk ops per phase: %d local-reduce, "
              "%d nic, %d local-broadcast\n",
              sample->meta().pipeline_depth, sample->meta().phase1_chunks,
              sample->meta().phase2_chunks, sample->meta().phase3_chunks);

  // The makespan-regression gate: cross-phase chunk pipelining must never
  // lose to the whole-partition joins, and on a multi-chunk ring over four
  // servers — where hops can store-and-forward chunk by chunk — it must
  // strictly win. CI runs this binary and fails on a nonzero exit.
  std::printf("\nchunk pipelining off vs on (4x 4-GPU servers, 64 MB "
              "AllReduce):\n%-14s %14s %14s %10s\n", "phase-2", "off (ms)",
              "on (ms)", "speedup");
  const auto quad = topo::induced_topology(machine,
                                           std::vector<int>{4, 5, 6, 7});
  const std::vector<topo::Topology> quad4(4, quad);
  bool pipeline_ok = true;
  for (const Phase2Policy policy :
       {Phase2Policy::kAllToAll, Phase2Policy::kRing,
        Phase2Policy::kHierarchical}) {
    ClusterOptions off_opts, on_opts;
    off_opts.fabric.nic_bw = on_opts.fabric.nic_bw = gbitps(40.0);
    off_opts.phase2 = on_opts.phase2 = policy;
    off_opts.pipeline = false;
    ClusterCommunicator off(quad4, off_opts);
    ClusterCommunicator on(quad4, on_opts);
    const double off_s = off.all_reduce(64e6).seconds;
    const double on_s = on.all_reduce(64e6).seconds;
    const bool never_worse = on_s <= off_s * 1.001;
    // The ring's serial hop chain is where per-chunk store-and-forward has
    // the most to overlap: demand a strict win there, not just parity.
    const bool floor_met =
        policy != Phase2Policy::kRing || on_s < off_s * 0.999;
    pipeline_ok = pipeline_ok && never_worse && floor_met;
    std::printf("%-14s %14.3f %14.3f %9.2fx%s\n", to_string(policy),
                off_s * 1e3, on_s * 1e3, off_s / on_s,
                never_worse && floor_met ? "" : "  REGRESSION");
  }
  // The fault-injection gate: degrade one NVLink mid-run and repair the
  // plan cache incrementally. A capacity event keeps the per-server trees
  // valid, so repair re-lowers only the plans whose footprints cross the
  // degraded link — the replan stall must stay well under the cold
  // planning cost it replaces. CI fails on a nonzero exit if the stall
  // exceeds the gate or the repair breaks a plan.
  std::printf("\nfault injection (4x 4-GPU servers): degrade one server-0 "
              "NVLink to 50%%, repair in place\n");
  ClusterOptions fault_opts;
  fault_opts.fabric.nic_bw = gbitps(40.0);
  ClusterCommunicator fault_cluster(quad4, fault_opts);
  const std::vector<double> bucket_bytes{4e6, 16e6, 64e6};
  const auto now = [] { return std::chrono::steady_clock::now(); };
  const auto cold_start = now();
  for (const double b : bucket_bytes) {
    fault_cluster.compile(CollectiveKind::kAllReduce, b);
    fault_cluster.compile(CollectiveKind::kBroadcast, b, /*root=*/0);
  }
  const double cold_seconds =
      std::chrono::duration<double>(now() - cold_start).count();

  sim::HealthEvent degrade;
  degrade.kind = sim::HealthEventKind::kDegradeLink;
  degrade.channel = fault_cluster.fabric().nvlink_route(0, 0, 1)[0];
  degrade.factor = 0.5;
  const auto repair_start = now();
  const RepairReport report = fault_cluster.repair_plans(degrade);
  const double repair_seconds =
      std::chrono::duration<double>(now() - repair_start).count();

  // The stall budget: incremental repair must cost at most this fraction
  // of the cold planning it avoids redoing from scratch.
  constexpr double kStallBudget = 0.75;
  const bool stall_ok = repair_seconds <= kStallBudget * cold_seconds;
  const bool repair_ok = report.failed == 0 && !report.full;
  std::printf("cold planning: %zu plans in %.1f ms; repair: %zu dropped, "
              "%zu retained, %zu recompiled in %.1f ms (%.0f%% of cold, "
              "budget %.0f%%)%s\n",
              2 * bucket_bytes.size(), cold_seconds * 1e3, report.dropped,
              report.retained, report.recompiled, repair_seconds * 1e3,
              100.0 * repair_seconds / cold_seconds, 100.0 * kStallBudget,
              stall_ok && repair_ok ? "" : "  REGRESSION");
  // The repaired cache must serve the degraded fabric without recompiling.
  const std::uint64_t misses_before = fault_cluster.plan_cache().misses();
  for (const double b : bucket_bytes) fault_cluster.all_reduce(b);
  const bool warm_after_repair =
      fault_cluster.plan_cache().misses() == misses_before;
  if (!warm_after_repair) {
    std::printf("REGRESSION: repaired plans missed the cache\n");
  }
  return warm_compiles == 0 && pipeline_ok && stall_ok && repair_ok &&
                 warm_after_repair
             ? 0
             : 1;
}
