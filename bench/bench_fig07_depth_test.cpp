// Figure 7 (§2.2): reduce+forward throughput over a chain of 3-8 GPUs at
// 10 MB / 100 MB / 1000 MB. Throughput should sit near one NVLink lane
// (~19-21 GB/s), dip slightly with chain depth, and collapse for small
// payloads where CUDA command overheads dominate.
#include <cstdio>

#include "bench_common.h"
#include "blink/sim/executor.h"

int main() {
  using namespace blink;
  bench::banner("Figure 7",
                "Chain reduce+forward throughput (GB/s), DGX-1V lanes");
  std::printf("%-8s %10s %10s %10s\n", "#GPUs", "10MB", "100MB", "1000MB");

  for (int n = 3; n <= 8; ++n) {
    const auto topo = topo::make_chain(n);
    const sim::Fabric fabric(topo, sim::FabricParams{});
    const auto set = generate_trees(topo, 0);
    const auto trees = route_trees(fabric, 0, set);
    std::printf("%-8d", n);
    for (const double bytes : {10e6, 100e6, 1000e6}) {
      ProgramBuilder builder(fabric, CodeGenOptions{});
      // reduce toward GPU 0 along the chain: reduce+forward at every hop.
      builder.reduce(trees, bytes);
      const auto run = sim::execute(fabric, builder.take());
      std::printf(" %10.1f", run.throughput(bytes) / 1e9);
    }
    std::printf("\n");
  }
  std::printf("\npaper: ~21 GB/s at 3 GPUs falling to ~19 GB/s at 8 for "
              "1000MB; lower for small payloads.\n");
  return 0;
}
