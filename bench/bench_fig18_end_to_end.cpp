// Figure 18 (§5.4): end-to-end single-server training with Blink vs NCCL on
// DGX-1V allocations: reduction in iteration time (left) and in exposed
// communication time (right) for the four CNNs.
//
// Uses the plan/execute API: the first training iteration compiles one
// CollectivePlan per gradient-bucket size; every later iteration fetches the
// plans from the communicator's cache, skipping TreeGen and CodeGen the way
// the paper amortizes the one-time planning cost over the job (§3.2, §5).
#include <cstdio>

#include "bench_common.h"
#include "blink/dnn/training.h"

int main() {
  using namespace blink;
  bench::banner("Figure 18",
                "Training iteration-time and comm-time reduction, DGX-1V");
  const auto machine = topo::make_dgx1v();
  // The configurations the paper shows (subset of the unique bins).
  const std::vector<std::vector<int>> configs{
      {0, 1, 2},       {3, 6, 7},          {0, 1, 2, 3}, {1, 4, 5, 7},
      {1, 4, 5, 6, 7}, {2, 3, 5, 6, 7},    {1, 2, 4, 5, 6, 7},
      {2, 3, 4, 5, 6, 7}, {1, 2, 3, 4, 5, 6, 7}, {0, 1, 2, 3, 4, 5, 6, 7}};
  constexpr int kIterations = 5;  // a short training job per config

  std::printf("%-18s %-10s %12s %12s %12s %12s\n", "GPUs", "model",
              "iter nccl", "iter blink", "iter red.", "comm red.");
  std::vector<double> iter_reductions;
  std::vector<double> comm_reductions;
  std::uint64_t cold_compiles = 0;
  std::uint64_t warm_compiles = 0;
  std::uint64_t warm_hits = 0;
  for (const auto& alloc : configs) {
    const auto topo = topo::induced_topology(machine, alloc);
    Communicator blink_comm(topo);
    baselines::NcclCommunicator nccl(topo);
    dnn::TrainingOptions opts;
    opts.num_gpus = topo.num_gpus;
    for (const auto& model : dnn::model_zoo()) {
      const auto nccl_it = dnn::simulate_iteration(
          model, dnn::GpuGeneration::kV100,
          [&](double b) { return nccl.all_reduce(b).seconds; }, opts);
      const auto run_blink_iteration = [&] {
        return dnn::simulate_iteration(
            model, dnn::GpuGeneration::kV100,
            [&](double b) {
              return blink_comm
                  .execute(*blink_comm.compile(CollectiveKind::kAllReduce, b))
                  .seconds;
            },
            opts);
      };
      // Iteration 1 compiles a plan per bucket size...
      const std::uint64_t misses0 = blink_comm.plan_cache().misses();
      const auto blink_it = run_blink_iteration();
      cold_compiles += blink_comm.plan_cache().misses() - misses0;
      // ...and iterations 2..N reuse them (every compile is a cache hit).
      const std::uint64_t misses1 = blink_comm.plan_cache().misses();
      const std::uint64_t hits1 = blink_comm.plan_cache().hits();
      for (int it = 1; it < kIterations; ++it) run_blink_iteration();
      warm_compiles += blink_comm.plan_cache().misses() - misses1;
      warm_hits += blink_comm.plan_cache().hits() - hits1;
      const double iter_red =
          1.0 - blink_it.iteration_seconds / nccl_it.iteration_seconds;
      const double comm_red =
          nccl_it.exposed_comm_seconds > 1e-9
              ? 1.0 - blink_it.exposed_comm_seconds /
                          nccl_it.exposed_comm_seconds
              : 0.0;
      iter_reductions.push_back(std::max(iter_red, 1e-6));
      comm_reductions.push_back(std::max(comm_red, 1e-6));
      std::printf("%-18s %-10s %10.1fms %10.1fms %11.1f%% %11.1f%%\n",
                  bench::alloc_label(alloc).c_str(), model.name.c_str(),
                  nccl_it.iteration_seconds * 1e3,
                  blink_it.iteration_seconds * 1e3, 100 * iter_red,
                  100 * comm_red);
    }
  }
  double max_iter = 0.0;
  double max_comm = 0.0;
  for (const double r : iter_reductions) max_iter = std::max(max_iter, r);
  for (const double r : comm_reductions) max_comm = std::max(max_comm, r);
  std::printf("\nmax iteration-time reduction %.1f%% (paper: up to 40%%); "
              "max comm reduction %.1f%% (paper: up to 87%%)\n",
              100 * max_iter, 100 * max_comm);
  std::printf("plan reuse: %llu plans compiled in first iterations; "
              "iterations 2-%d recompiled %llu and hit the cache %llu times\n",
              static_cast<unsigned long long>(cold_compiles), kIterations,
              static_cast<unsigned long long>(warm_compiles),
              static_cast<unsigned long long>(warm_hits));
  return warm_compiles == 0 ? 0 : 1;
}
