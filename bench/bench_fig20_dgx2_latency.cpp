// Figure 20 (§5.2.3): AllReduce latency (microseconds) on the DGX-2,
// 1 KB - 1 GB. The paper reports up to 3.32x lower latency for Blink's
// one-hop trees vs NCCL's double binary trees and rings.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "blink/common/units.h"

int main() {
  using namespace blink;
  bench::banner("Figure 20", "DGX-2 16-GPU AllReduce latency (us)");
  Communicator blink_comm(topo::make_dgx2());
  baselines::NcclCommunicator nccl(topo::make_dgx2());

  std::printf("%-8s %12s %12s %9s\n", "size", "NCCL", "Blink", "ratio");
  std::vector<double> ratios;
  for (std::uint64_t bytes = 1'000; bytes <= 1'000'000'000; bytes *= 4) {
    // Both backends run through the same plan/execute engine interface.
    const auto n = nccl.execute(*nccl.compile(CollectiveKind::kAllReduce,
                                              static_cast<double>(bytes)));
    const auto b = blink_comm.execute(*blink_comm.compile(
        CollectiveKind::kAllReduce, static_cast<double>(bytes)));
    ratios.push_back(n.seconds / b.seconds);
    std::printf("%-8s %12.1f %12.1f %8.2fx\n", format_bytes(bytes).c_str(),
                n.seconds * 1e6, b.seconds * 1e6, ratios.back());
  }
  std::printf("\nmax latency advantage %.2fx (paper: up to 3.32x)\n",
              *std::max_element(ratios.begin(), ratios.end()));
  return 0;
}
