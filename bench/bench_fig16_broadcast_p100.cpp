// Figure 16: Broadcast throughput, NCCL2 vs Blink, all 14 unique DGX-1P
// topologies (§5.2.1; paper reports up to 3x, 1.6x geometric mean).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace blink;
  bench::banner("Figure 16",
                "Broadcast throughput (GB/s), all unique DGX-1P topologies");
  const auto machine = topo::make_dgx1p();
  const auto backends = bench::comparison_backends();
  std::printf("%-18s %10s %10s %8s\n", "GPUs", "Blink", "NCCL2", "speedup");

  const double sizes[] = {500e6};
  std::vector<double> speedups;
  for (int k = 3; k <= 8; ++k) {
    for (const auto& bin :
         topo::unique_configs(machine, k, /*connected_only=*/true)) {
      const auto topo = topo::induced_topology(machine, bin.representative);
      const auto rows = bench::run_backends(backends, topo,
                                            CollectiveKind::kBroadcast, sizes,
                                            /*root=*/0);
      const double blink_bw = rows[0][0].algorithm_bw;
      const double nccl_bw = rows[1][0].algorithm_bw;
      speedups.push_back(blink_bw / nccl_bw);
      std::printf("%-18s %10.1f %10.1f %7.2fx\n",
                  bench::alloc_label(bin.representative).c_str(),
                  blink_bw / 1e9, nccl_bw / 1e9, speedups.back());
    }
  }
  std::printf("%-18s %29.2fx\n", "geoMean", bench::geo_mean(speedups));
  std::printf("\npaper: Blink up to 3x, 1.6x geometric mean over NCCL2.\n");
  return 0;
}
