// Figure 5 (§2.1): best/worst-case communication overhead (% of iteration
// time) for AlexNet/ResNet18/ResNet50/VGG16 under NCCL, for 3-8 GPU
// allocations on DGX-1P and DGX-1V. The worst case is the unique config
// with the slowest AllReduce; the best case the fastest.
#include <cstdio>
#include <limits>

#include "bench_common.h"
#include "blink/dnn/training.h"

namespace {

using namespace blink;

void report(const char* label, const topo::Topology& machine,
            dnn::GpuGeneration gen) {
  std::printf("--- %s ---\n", label);
  std::printf("%-6s", "#GPUs");
  for (const auto& m : dnn::model_zoo()) {
    std::printf(" %18s", m.name.c_str());
  }
  std::printf("\n");
  for (int k = 3; k <= 8; ++k) {
    std::printf("%-6d", k);
    for (const auto& model : dnn::model_zoo()) {
      double best = std::numeric_limits<double>::infinity();
      double worst = 0.0;
      for (const auto& bin :
           topo::unique_configs(machine, k, /*connected_only=*/true)) {
        const auto topo = topo::induced_topology(machine, bin.representative);
        baselines::NcclCommunicator nccl(topo);
        dnn::TrainingOptions opts;
        opts.num_gpus = k;
        const auto it = dnn::simulate_iteration(
            model, gen,
            [&](double b) { return nccl.all_reduce(b).seconds; }, opts);
        best = std::min(best, it.comm_fraction);
        worst = std::max(worst, it.comm_fraction);
      }
      std::printf("   %6.1f%% - %5.1f%%", 100 * best, 100 * worst);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::banner("Figure 5",
                "Best/worst NCCL communication overhead (% of iteration)");
  report("DGX-1P (P100)", topo::make_dgx1p(), dnn::GpuGeneration::kP100);
  report("DGX-1V (V100)", topo::make_dgx1v(), dnn::GpuGeneration::kV100);
  std::printf("\npaper: up to ~50%% on DGX-1V for AlexNet/VGG16; ResNets "
              "lower; DGX-1P slightly lower than DGX-1V.\n");
  return 0;
}
