// Figure 19 (§5.2.3): AllReduce throughput on a 16-GPU DGX-2 from 1 KB to
// 1 GB, Blink one-hop trees vs NCCL (double binary trees below 16 KB, rings
// above). The paper reports up to 3.5x higher throughput for Blink, with
// the advantage concentrated at small/medium sizes.
#include <cstdio>

#include "bench_common.h"
#include "blink/common/units.h"

int main() {
  using namespace blink;
  bench::banner("Figure 19", "DGX-2 16-GPU AllReduce throughput (GB/s)");
  Communicator blink_comm(topo::make_dgx2());
  baselines::NcclCommunicator nccl(topo::make_dgx2());

  std::printf("%-8s %12s %12s %9s\n", "size", "NCCL", "Blink", "ratio");
  std::vector<double> ratios;
  for (std::uint64_t bytes = 1'000; bytes <= 1'000'000'000; bytes *= 2) {
    // Both backends run through the same plan/execute engine interface.
    const auto n = nccl.execute(*nccl.compile(CollectiveKind::kAllReduce,
                                              static_cast<double>(bytes)));
    const auto b = blink_comm.execute(*blink_comm.compile(
        CollectiveKind::kAllReduce, static_cast<double>(bytes)));
    ratios.push_back(b.algorithm_bw / n.algorithm_bw);
    std::printf("%-8s %12.3f %12.3f %8.2fx\n",
                format_bytes(bytes).c_str(), n.algorithm_bw / 1e9,
                b.algorithm_bw / 1e9, ratios.back());
  }
  std::printf("\nmax ratio %.2fx (paper: up to 3.5x, largest at small "
              "sizes)\n",
              *std::max_element(ratios.begin(), ratios.end()));
  return 0;
}
