// Figure 8 (§2.2): multi-transfer micro-benchmarks.
//   MIMO — two flows enter a center GPU, are reduced with local data and
//          leave to two different destinations.
//   MCA  — two reduce chains merge at a center GPU.
// Both should land a little under one NVLink lane (~18 GB/s in the paper,
// the reduce engine sharing penalty).
#include <cstdio>

#include "bench_common.h"
#include "blink/sim/executor.h"

namespace {

using namespace blink;

// Chunked reduce+forward flow along an explicit GPU path.
void emit_path(ProgramBuilder& builder, const sim::Fabric& fabric,
               const std::vector<int>& path, double bytes, int tag) {
  const int chunks = builder.chunks_for(bytes);
  std::vector<int> prev(static_cast<std::size_t>(chunks), -1);
  for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
    const auto route = fabric.nvlink_route(0, path[hop], path[hop + 1]);
    std::vector<int> done(static_cast<std::size_t>(chunks));
    for (int c = 0; c < chunks; ++c) {
      std::vector<int> gates;
      if (prev[static_cast<std::size_t>(c)] >= 0) {
        // Reduce the received chunk with local data before forwarding.
        const int r = builder.reduce_kernel(
            0, path[hop], 2.0 * bytes / chunks,
            {prev[static_cast<std::size_t>(c)]});
        gates.push_back(r);
      }
      auto ops = builder.copy_chunks(route, bytes / chunks, 1,
                                     tag * 64 + static_cast<int>(hop), gates);
      done[static_cast<std::size_t>(c)] = ops.back();
    }
    prev = std::move(done);
  }
}

double run_case(const std::vector<std::vector<int>>& paths, double bytes) {
  const auto topo = topo::make_clique(6);  // all pairs adjacent, gen2 lanes
  const sim::Fabric fabric(topo, sim::FabricParams{});
  ProgramBuilder builder(fabric, CodeGenOptions{});
  int tag = 0;
  for (const auto& p : paths) emit_path(builder, fabric, p, bytes, tag++);
  const auto run = sim::execute(fabric, builder.take());
  return bytes / run.makespan;
}

}  // namespace

int main() {
  bench::banner("Figure 8", "MIMO / MCA multi-transfer throughput (GB/s)");
  std::printf("%-8s %10s %10s\n", "size", "MIMO", "MCA");
  for (const double bytes : {10e6, 100e6, 1000e6}) {
    // MIMO: 1->3->4 and 2->3->5 (GPU 3 is the center).
    const double mimo = run_case({{1, 3, 4}, {2, 3, 5}}, bytes);
    // MCA: chains 1->2->5 and 3->4->5 merging at GPU 5.
    const double mca = run_case({{1, 2, 5}, {3, 4, 5}}, bytes);
    std::printf("%-8.0fMB %8.1f %10.1f\n", bytes / 1e6, mimo / 1e9,
                mca / 1e9);
  }
  std::printf("\npaper: ~18 GB/s for >= 100MB on both patterns "
              "(~15%% below a pairwise lane).\n");
  return 0;
}
