// Serving-layer SLO bench: sustained compile+execute traffic through
// serve::PlanService from 8 client threads across 3 tenants on 2 fabric
// shards, gated by exit code for CI:
//
//   * warm hit-rate SLO — after a cold compile pass, the sustained phase
//     must serve >= 99% of its collective requests from the sharded plan
//     caches (exit 1 below 95%);
//   * typed admission — a rogue tenant with a near-zero compile quota must
//     be rejected with ServeStatus values, never an exception or crash, and
//     must not starve the well-behaved tenants (their traffic stays 100%
//     kOk);
//   * queue overflow stays typed — with workers paused, submissions beyond
//     the queue capacity come back kRejectedQueueFull;
//   * store GC — after flushing the live shards amid decoy store files, one
//     sweep must bring the store directory under its size cap without
//     evicting any live shard's file.
//
// Prints a summary table (throughput, hit rate, per-tenant reject counters)
// like the figure benches.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "blink/serve/service.h"

namespace {

namespace fs = std::filesystem;
using blink::CollectiveKind;
using blink::serve::FabricSpec;
using blink::serve::PlanService;
using blink::serve::RequestType;
using blink::serve::ServeRequest;
using blink::serve::ServeResponse;
using blink::serve::ServeStatus;
using blink::serve::ServiceOptions;
using blink::serve::ServiceStats;

constexpr int kClientThreads = 8;      // >= 8 per the acceptance criteria
constexpr int kWarmIterations = 40;    // per thread, over every shape
constexpr double kHitRateSlo = 0.95;
constexpr std::uint64_t kGcCapBytes = 256 * 1024;

ServeRequest make_request(const std::string& tenant, const FabricSpec& fabric,
                          CollectiveKind kind, double bytes,
                          RequestType type = RequestType::kExecute) {
  ServeRequest request;
  request.tenant = tenant;
  request.type = type;
  request.fabric = fabric;
  request.kind = kind;
  request.bytes = bytes;
  return request;
}

bool check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

}  // namespace

int main() {
  blink::bench::banner("bench_serving",
                       "multi-tenant plan serving: throughput, admission, GC");

  const fs::path store_dir = fs::temp_directory_path() / "blink-bench-serving";
  std::error_code ec;
  fs::remove_all(store_dir, ec);

  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 1024;
  options.store_dir = store_dir.string();
  options.gc.max_total_bytes = kGcCapBytes;
  options.default_quota.compile_rate = 1000.0;
  options.default_quota.compile_burst = 200.0;
  options.default_quota.max_in_flight = 256;
  // The rogue tenant gets a token bucket that admits almost nothing.
  options.tenant_quotas["rogue"] =
      blink::serve::TenantQuota{0.0, 2.0, 256};

  bool all_ok = true;
  const std::vector<FabricSpec> fabrics{
      FabricSpec{"dgx1v", {0, 1, 2, 3}, "blink"},
      FabricSpec{"dgx2", {0, 1, 2, 3, 4, 5, 6, 7}, "blink"},
  };
  const std::vector<double> shapes{4e6, 16e6, 64e6};
  const std::vector<CollectiveKind> kinds{CollectiveKind::kAllReduce,
                                          CollectiveKind::kBroadcast};

  {
    PlanService service(options);

    // --- cold pass: compile every (fabric, kind, shape) once ---------------
    std::size_t cold_failures = 0;
    for (const FabricSpec& fabric : fabrics) {
      for (const CollectiveKind kind : kinds) {
        for (const double bytes : shapes) {
          const ServeResponse r = service.handle(
              make_request("loader", fabric, kind, bytes, RequestType::kCompile));
          if (r.status != ServeStatus::kOk) ++cold_failures;
        }
      }
    }
    all_ok &= check(cold_failures == 0, "cold compile pass all ok");

    // --- sustained warm phase: 8 threads, 2 serving tenants ----------------
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> not_ok{0};
    std::atomic<std::uint64_t> untyped{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (int t = 0; t < kClientThreads; ++t) {
      clients.emplace_back([&, t] {
        const std::string tenant = t % 2 == 0 ? "train" : "infer";
        for (int i = 0; i < kWarmIterations; ++i) {
          for (std::size_t f = 0; f < fabrics.size(); ++f) {
            for (const CollectiveKind kind : kinds) {
              const double bytes =
                  shapes[(static_cast<std::size_t>(t + i) + f) % shapes.size()];
              try {
                const ServeResponse r = service.handle(make_request(
                    tenant, fabrics[f], kind, bytes));
                served.fetch_add(1);
                if (r.status != ServeStatus::kOk) not_ok.fetch_add(1);
              } catch (...) {
                untyped.fetch_add(1);  // an admission reject escaped as a throw
              }
            }
          }
        }
      });
    }
    for (auto& c : clients) c.join();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const ServiceStats warm_stats = service.stats();
    const double hit_rate = warm_stats.warm_hit_rate();
    std::printf(
        "\nsustained: %llu requests, %d threads, %.3f s wall -> %.0f req/s\n"
        "warm hit rate %.4f (SLO >= %.2f), shards %zu, cache h/m %llu/%llu\n",
        static_cast<unsigned long long>(served.load()), kClientThreads, wall,
        wall > 0 ? static_cast<double>(served.load()) / wall : 0.0, hit_rate,
        kHitRateSlo, warm_stats.num_shards,
        static_cast<unsigned long long>(warm_stats.cache_hits),
        static_cast<unsigned long long>(warm_stats.cache_misses));
    all_ok &= check(untyped.load() == 0, "no request escaped as an exception");
    all_ok &= check(not_ok.load() == 0, "well-behaved tenants all served kOk");
    all_ok &= check(hit_rate >= kHitRateSlo, "warm hit-rate SLO met");
    all_ok &= check(warm_stats.num_shards == fabrics.size(),
                    "one shard per distinct fabric");

    // --- rogue tenant: tiny quota, distinct cold shapes --------------------
    std::uint64_t rogue_quota_rejects = 0;
    std::uint64_t rogue_untyped = 0;
    for (int i = 0; i < 32; ++i) {
      try {
        const ServeResponse r = service.handle(
            make_request("rogue", fabrics[0], CollectiveKind::kAllReduce,
                         1e6 + static_cast<double>(i), RequestType::kCompile));
        if (r.status == ServeStatus::kRejectedQuota) ++rogue_quota_rejects;
      } catch (...) {
        ++rogue_untyped;
      }
    }
    const ServeResponse good_after = service.handle(make_request(
        "train", fabrics[0], CollectiveKind::kAllReduce, shapes[0]));
    std::printf("\nrogue tenant: %llu/32 typed quota rejections\n",
                static_cast<unsigned long long>(rogue_quota_rejects));
    all_ok &= check(rogue_untyped == 0, "rogue rejections all typed");
    all_ok &= check(rogue_quota_rejects >= 25,
                    "rogue tenant throttled by its token bucket");
    all_ok &= check(good_after.status == ServeStatus::kOk &&
                        good_after.warm_hit,
                    "well-behaved tenant unaffected by the rogue");

    // --- queue overflow stays typed ----------------------------------------
    {
      ServiceOptions tiny = options;
      tiny.store_dir.clear();
      tiny.gc = {};
      tiny.num_workers = 1;
      tiny.queue_capacity = 4;
      PlanService small(tiny);
      small.pause_workers();
      std::vector<std::future<ServeResponse>> pending;
      std::uint64_t queue_rejects = 0;
      std::uint64_t overflow_untyped = 0;
      for (int i = 0; i < 12; ++i) {
        try {
          auto future = small.submit(make_request(
              "burst" + std::to_string(i), fabrics[0],
              CollectiveKind::kAllReduce, 2e6 + static_cast<double>(i)));
          if (future.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready) {
            if (future.get().status == ServeStatus::kRejectedQueueFull) {
              ++queue_rejects;
            }
          } else {
            pending.push_back(std::move(future));
          }
        } catch (...) {
          ++overflow_untyped;
        }
      }
      small.resume_workers();
      for (auto& future : pending) future.get();  // drain before destruction
      std::printf("\nqueue overflow: %llu/12 typed queue-full rejections\n",
                  static_cast<unsigned long long>(queue_rejects));
      all_ok &= check(overflow_untyped == 0 && queue_rejects == 8,
                      "admission queue overflow rejected, typed, exact");
    }

    // --- store GC under a size cap -----------------------------------------
    fs::create_directories(store_dir, ec);
    for (int i = 0; i < 24; ++i) {
      // Decoy store files from long-gone fabrics, together far over the cap.
      std::ofstream decoy(store_dir /
                          ("plans-00000000000000" + std::to_string(10 + i) +
                           ".bpc"));
      decoy << std::string(32 * 1024, 'x');
    }
    const std::size_t flushed = service.flush();
    const auto report = service.run_gc();
    std::uintmax_t dir_bytes = 0;
    std::size_t live_missing = 0;
    for (const auto& entry : fs::directory_iterator(store_dir)) {
      dir_bytes += entry.file_size();
    }
    // The live shards' files must have survived the sweep.
    const ServeResponse probe = service.handle(make_request(
        "train", fabrics[0], CollectiveKind::kAllReduce, shapes[0]));
    if (probe.status != ServeStatus::kOk) ++live_missing;
    std::printf(
        "\ngc: flushed %zu plans; evicted %zu files (%llu B); %llu B remain "
        "(cap %llu)\n",
        flushed, report.files_evicted,
        static_cast<unsigned long long>(report.bytes_evicted),
        static_cast<unsigned long long>(dir_bytes),
        static_cast<unsigned long long>(kGcCapBytes));
    all_ok &= check(flushed > 0, "live shards flushed plans to the store");
    all_ok &= check(report.files_evicted > 0, "gc evicted decoy store files");
    all_ok &= check(dir_bytes <= kGcCapBytes,
                    "store directory within its size cap after gc");
    all_ok &= check(report.files_protected == fabrics.size() &&
                        live_missing == 0,
                    "gc protected every live shard's store file");
  }

  // --- warm restart: a fresh service over the flushed store ----------------
  {
    ServiceOptions warm_options = options;
    warm_options.gc_on_start = true;
    PlanService warm(warm_options);
    const ServeResponse warm_load = warm.handle(make_request(
        "train", fabrics[0], CollectiveKind::kAllReduce, shapes[0],
        RequestType::kWarmLoad));
    const ServeResponse first = warm.handle(make_request(
        "train", fabrics[0], CollectiveKind::kAllReduce, shapes[0]));
    std::printf("\nrestart: warm-loaded %zu plans, first request %s\n",
                warm_load.plans_touched, first.warm_hit ? "warm" : "cold");
    all_ok &= check(warm_load.status == ServeStatus::kOk &&
                        warm_load.plans_touched > 0,
                    "restarted service warm-loads the store");
    all_ok &= check(first.status == ServeStatus::kOk && first.warm_hit,
                    "first request after restart is a warm hit");
  }

  fs::remove_all(store_dir, ec);
  std::printf("\nbench_serving: %s\n", all_ok ? "OK" : "FAILED");
  return all_ok ? 0 : 1;
}
