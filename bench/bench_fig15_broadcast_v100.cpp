// Figure 15: Broadcast throughput, NCCL2 vs Blink, for all 46 unique
// topologies induced by GPU allocations on a DGX-1V. 500 MB payload with
// 50 MB / 1 GB error bars, as in §5.2.1.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace blink;
  bench::banner("Figure 15",
                "Broadcast throughput (GB/s), all unique DGX-1V topologies");
  const auto machine = topo::make_dgx1v();
  const auto backends = bench::comparison_backends();
  std::printf("%-18s %10s %10s %10s %10s %8s\n", "GPUs", "Blink", "lo", "hi",
              "NCCL2", "speedup");

  // Main payload first, then the error-bar sizes; the bars run on Blink
  // only, as in the figure.
  const double blink_sizes[] = {500e6, 50e6, 1000e6};
  const double nccl_sizes[] = {500e6};
  std::vector<double> speedups;
  for (int k = 3; k <= 8; ++k) {
    for (const auto& bin :
         topo::unique_configs(machine, k, /*connected_only=*/true)) {
      const auto topo = topo::induced_topology(machine, bin.representative);
      const auto blink_rows = bench::run_backends({backends[0]}, topo,
                                                  CollectiveKind::kBroadcast,
                                                  blink_sizes, /*root=*/0);
      const auto nccl_rows = bench::run_backends({backends[1]}, topo,
                                                 CollectiveKind::kBroadcast,
                                                 nccl_sizes, /*root=*/0);
      const double blink_bw = blink_rows[0][0].algorithm_bw;
      const double blink_lo = blink_rows[0][1].algorithm_bw;
      const double blink_hi = blink_rows[0][2].algorithm_bw;
      const double nccl_bw = nccl_rows[0][0].algorithm_bw;
      speedups.push_back(blink_bw / nccl_bw);
      std::printf("%-18s %10.1f %10.1f %10.1f %10.1f %7.2fx\n",
                  bench::alloc_label(bin.representative).c_str(),
                  blink_bw / 1e9, blink_lo / 1e9, blink_hi / 1e9,
                  nccl_bw / 1e9, speedups.back());
    }
  }
  std::printf("%-18s %54.2fx\n", "geoMean", bench::geo_mean(speedups));
  std::printf("\npaper: Blink up to 6x, 2x geometric mean over NCCL2.\n");
  return 0;
}
