// Figure 14 (§5.1): theoretical speedup of packing spanning trees over
// ring construction, for Broadcast and AllReduce on DGX-1P and DGX-1V,
// across every allocation of 3-8 GPUs. Reported as a distribution
// (min / p5 / median / p95 / max), matching the paper's boxplot.
//
// Model (as in the paper): rings that exist over NVLink run at lane rate;
// when no NVLink ring exists the ring runs over PCIe at roughly half a lane.
// Blink's rate is the optimal arborescence packing (Edmonds bound).
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "blink/graph/maxflow.h"
#include "blink/graph/rings.h"

namespace {

using namespace blink;

double ring_rate(const topo::Topology& t) {
  const auto rings = graph::max_disjoint_rings(t);
  if (!rings.empty()) {
    return 2.0 * static_cast<double>(rings.size()) * t.nvlink_lane_bw;
  }
  // PCIe fallback: the paper approximates PCIe rings at half NVLink rate;
  // we use the modelled PCIe bandwidth, two directions.
  return 2.0 * t.pcie.gpu_bw / 2.0;
}

void report(const char* label, const topo::Topology& machine) {
  std::vector<double> speedups;
  for (int k = 3; k <= 8; ++k) {
    for (const auto& alloc : topo::enumerate_allocations(machine, k)) {
      const auto t = topo::induced_topology(machine, alloc);
      if (!t.nvlink_connected()) continue;
      const auto g = graph::nvlink_digraph(t);
      const double tree = graph::broadcast_rate_upper_bound(g, 0);
      const double ring = ring_rate(t);
      speedups.push_back(tree / ring);
    }
  }
  std::sort(speedups.begin(), speedups.end());
  const auto pick = [&](double q) {
    return speedups[static_cast<std::size_t>(q * (speedups.size() - 1))];
  };
  std::printf("%-16s %6.2f %6.2f %6.2f %6.2f %6.2f   (n=%zu)\n", label,
              pick(0.0), pick(0.05), pick(0.5), pick(0.95), pick(1.0),
              speedups.size());
}

}  // namespace

int main() {
  bench::banner("Figure 14",
                "Theoretical speedup of tree packing vs rings (same rate "
                "model for Broadcast and AllReduce)");
  std::printf("%-16s %6s %6s %6s %6s %6s\n", "machine", "min", "p5", "p50",
              "p95", "max");
  report("DGX-1P (P100)", topo::make_dgx1p());
  report("DGX-1V (V100)", topo::make_dgx1v());
  std::printf("\npaper: packing is never slower than rings and reaches ~6x "
              "where rings fall to PCIe.\n");
  return 0;
}
