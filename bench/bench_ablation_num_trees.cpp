// Ablation: effect of ILP tree minimization on *achieved* throughput
// (DESIGN.md §5): running the raw MWU packing (hundreds of slivers of
// trees) vs the minimized set on the same fabric. Many tiny trees mean tiny
// chunks, more launch overhead and worse pipelining — the §3.2.1 motivation.
#include <cstdio>

#include "bench_common.h"
#include "blink/sim/executor.h"

int main() {
  using namespace blink;
  bench::banner("Ablation", "ILP tree minimization on/off, DGX-1V broadcast");
  const auto machine = topo::make_dgx1v();

  std::printf("%-18s %10s %14s %10s %14s\n", "GPUs", "raw trees",
              "raw bw (GB/s)", "min trees", "min bw (GB/s)");
  for (const auto& alloc :
       {std::vector<int>{0, 1, 2, 3}, std::vector<int>{1, 2, 4, 5, 6, 7},
        std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}}) {
    const auto topo = topo::induced_topology(machine, alloc);
    const sim::Fabric fabric(topo, sim::FabricParams{});

    TreeGenOptions raw_opts;
    raw_opts.minimize = false;
    const auto raw_set = generate_trees(topo, 0, raw_opts);
    const auto min_set = generate_trees(topo, 0);

    auto measure = [&](const TreeSet& set) {
      ProgramBuilder builder(fabric, CodeGenOptions{});
      builder.broadcast(route_trees(fabric, 0, set), 500e6);
      return sim::execute(fabric, builder.take()).throughput(500e6);
    };
    std::printf("%-18s %10zu %14.1f %10zu %14.1f\n",
                bench::alloc_label(alloc).c_str(), raw_set.trees.size(),
                measure(raw_set) / 1e9, min_set.trees.size(),
                measure(min_set) / 1e9);
  }
  std::printf("\nexpected: the minimized set matches or beats the raw "
              "packing despite using far fewer trees.\n");
  return 0;
}
