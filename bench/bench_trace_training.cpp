// Trace-driven end-to-end training on a zoo fabric: the four paper CNNs
// (dnn/models) run their bucketed wait-free-backprop iteration (dnn/training)
// with every gradient AllReduce planned and simulated by a ClusterCommunicator
// over a two-rack fat-tree of NVSwitch boxes (topo::zoo). Exit-code gated:
//
//   plan-cache   warm iterations never recompile (bucket shapes all hit)
//   overlap      wait-free backprop is never slower than serial comm
//   exposure     exposed comm <= total comm, iteration >= compute
//   throughput   images/second is finite and positive
//   nic-floor    per-bucket AllReduce respects the oversubscribed NIC's
//                information-theoretic volume bound
//
// Any "REGRESSION" line fails the run (nonzero exit) — wire into CI.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "blink/blink/engine.h"
#include "blink/blink/multiserver.h"
#include "blink/dnn/models.h"
#include "blink/dnn/training.h"
#include "blink/topology/zoo.h"

namespace {

bool g_ok = true;

void gate(bool pass, const char* label, const std::string& detail) {
  std::printf("  gate %-12s %s%s%s\n", label, pass ? "ok" : "REGRESSION",
              detail.empty() ? "" : " — ", detail.c_str());
  g_ok = g_ok && pass;
}

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, v);
  return buf;
}

}  // namespace

int main() {
  using namespace blink;

  // Two racks x two servers of 4-GPU NVSwitch boxes, 5 GB/s NICs at 2:1
  // rack oversubscription -> every server effectively drives 2.5 GB/s.
  const auto cluster = topo::zoo::make_fat_tree_cluster(
      /*racks=*/2, /*servers_per_rack=*/2, /*gpus_per_server=*/4,
      /*nic_bw=*/5.0e9, /*oversubscription=*/2.0);
  ClusterOptions opts;
  opts.fabric = cluster.fabric;
  ClusterCommunicator comm(cluster.servers, opts);
  const double nic_rate = comm.fabric().nic_rate(0);

  std::printf("trace-driven training on %s: %d servers, %d GPUs, NIC %s GB/s "
              "effective\n\n",
              cluster.name.c_str(), comm.num_servers(), comm.num_gpus(),
              fmt("%.2f", nic_rate / 1e9).c_str());
  std::printf("%-10s %10s %10s %12s %12s %10s %8s\n", "model", "compute(s)",
              "comm(s)", "exposed(s)", "iter(s)", "imgs/s", "comm%");

  for (const dnn::ModelSpec& model : dnn::model_zoo()) {
    // One AllReduce per gradient bucket, planned and simulated on the
    // cluster fabric. Plans are cached by byte size, so repeat iterations
    // must be pure cache hits.
    double min_bucket_bytes = model.param_bytes;
    const dnn::AllReduceFn all_reduce = [&](double bytes) {
      min_bucket_bytes = std::min(min_bucket_bytes, bytes);
      return comm.all_reduce(bytes).seconds;
    };

    dnn::TrainingOptions topts;
    topts.num_gpus = comm.num_gpus();
    topts.wait_free_backprop = true;
    const auto cold = dnn::simulate_iteration(model, dnn::GpuGeneration::kV100,
                                              all_reduce, topts);
    const std::uint64_t misses_after_cold = comm.plan_cache().misses();
    const auto warm = dnn::simulate_iteration(model, dnn::GpuGeneration::kV100,
                                              all_reduce, topts);
    const std::uint64_t misses_after_warm = comm.plan_cache().misses();
    // Serial mode issues one full-gradient AllReduce — a shape the bucketed
    // iterations never compile, so it sits outside the warm-miss window.
    topts.wait_free_backprop = false;
    const auto serial = dnn::simulate_iteration(model, dnn::GpuGeneration::kV100,
                                                all_reduce, topts);

    std::printf("%-10s %10s %10s %12s %12s %10s %7s%%\n", model.name.c_str(),
                fmt("%.4f", warm.compute_seconds).c_str(),
                fmt("%.4f", warm.comm_seconds).c_str(),
                fmt("%.4f", warm.exposed_comm_seconds).c_str(),
                fmt("%.4f", warm.iteration_seconds).c_str(),
                fmt("%.1f", warm.images_per_second).c_str(),
                fmt("%.1f", 100.0 * warm.comm_fraction).c_str());

    gate(misses_after_warm == misses_after_cold, "plan-cache",
         "warm iterations recompiled " +
             std::to_string(misses_after_warm - misses_after_cold) +
             " bucket shapes");
    gate(warm.iteration_seconds <=
             serial.iteration_seconds * (1.0 + 1e-9) + 1e-12,
         "overlap",
         "wait-free " + fmt("%.4f", warm.iteration_seconds) + "s vs serial " +
             fmt("%.4f", serial.iteration_seconds) + "s");
    gate(warm.exposed_comm_seconds <= warm.comm_seconds * (1.0 + 1e-9) &&
             warm.iteration_seconds >=
                 warm.compute_seconds * (1.0 - 1e-9),
         "exposure",
         "exposed " + fmt("%.4f", warm.exposed_comm_seconds) + "s of " +
             fmt("%.4f", warm.comm_seconds) + "s comm");
    gate(std::isfinite(warm.images_per_second) && warm.images_per_second > 0.0,
         "throughput", fmt("%.1f", warm.images_per_second) + " imgs/s");
    // Every per-GPU gradient byte must enter and leave each server's NIC at
    // least once for a cross-rack AllReduce, so even the smallest bucket is
    // floored by bytes / nic_rate.
    const double floor_seconds = min_bucket_bytes / nic_rate;
    const double smallest =
        comm.all_reduce(min_bucket_bytes).seconds;  // warm: pure lookup
    gate(smallest >= 0.999 * floor_seconds, "nic-floor",
         "bucket " + fmt("%.3g", min_bucket_bytes) + "B all-reduced in " +
             fmt("%.6f", smallest) + "s, NIC volume floor " +
             fmt("%.6f", floor_seconds) + "s");
    // The cold iteration is identical math over the same plans; any drift
    // means plan lookups are not deterministic.
    gate(cold.comm_seconds == warm.comm_seconds, "determinism",
         "cold comm " + fmt("%.6f", cold.comm_seconds) + "s vs warm " +
             fmt("%.6f", warm.comm_seconds) + "s");
    std::printf("\n");
  }

  std::printf(g_ok ? "all gates passed\n" : "REGRESSION: some gates failed\n");
  return g_ok ? 0 : 1;
}
