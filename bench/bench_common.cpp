#include "bench_common.h"

#include <cmath>
#include <cstdio>

namespace blink::bench {

std::string alloc_label(const std::vector<int>& gpus) {
  std::string label;
  for (const int g : gpus) {
    if (!label.empty()) label += ",";
    label += std::to_string(g);
  }
  return label;
}

double geo_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

void banner(const std::string& figure, const std::string& description) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("================================================================\n");
}

}  // namespace blink::bench
