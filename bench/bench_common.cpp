#include "bench_common.h"

#include <cmath>
#include <cstdio>

namespace blink::bench {

std::string alloc_label(const std::vector<int>& gpus) {
  std::string label;
  for (const int g : gpus) {
    if (!label.empty()) label += ",";
    label += std::to_string(g);
  }
  return label;
}

double geo_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

void banner(const std::string& figure, const std::string& description) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("================================================================\n");
}

std::vector<BackendFactory> comparison_backends() {
  return {
      {"blink",
       [](const topo::Topology& topo) -> std::unique_ptr<CollectiveEngine> {
         return std::make_unique<Communicator>(topo);
       }},
      {"nccl",
       [](const topo::Topology& topo) -> std::unique_ptr<CollectiveEngine> {
         return std::make_unique<baselines::NcclCommunicator>(topo);
       }},
  };
}

std::vector<std::vector<CollectiveResult>> run_backends(
    const std::vector<BackendFactory>& backends, const topo::Topology& topo,
    CollectiveKind kind, std::span<const double> sizes, int root) {
  std::vector<std::vector<CollectiveResult>> results;
  results.reserve(backends.size());
  for (const BackendFactory& factory : backends) {
    const auto engine = factory.make(topo);
    std::vector<CollectiveResult> row;
    row.reserve(sizes.size());
    for (const double bytes : sizes) {
      row.push_back(engine->execute(*engine->compile(kind, bytes, root)));
    }
    results.push_back(std::move(row));
  }
  return results;
}

}  // namespace blink::bench
